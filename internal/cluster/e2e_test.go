package cluster_test

// The PR-4 acceptance scenario end to end, all on loopback HTTP:
// freqmerge over two durable freqd nodes ingesting disjoint partitions
// of one Zipf stream, with one node killed (no checkpoint, no clean
// close — the store is simply abandoned) and recovered mid-run. The
// coordinator must never double-count across the restart — the node
// replays its WAL and comes back with cumulative state under a new
// epoch, and the pull replaces its contribution wholesale — and the
// final merged /topk must have recall 1 at φ·N_total against
// internal/exact over the union stream.

import (
	"context"
	"fmt"
	"net/http/httptest"
	"testing"
	"time"

	"streamfreq"
	"streamfreq/internal/cluster"
	"streamfreq/internal/core"
	"streamfreq/internal/exact"
	"streamfreq/internal/metrics"
	"streamfreq/internal/persist"
	"streamfreq/internal/serve"
	"streamfreq/internal/zipf"
)

// durableNode builds one freqd life over dir: construct, recover, wire
// the WAL, serve — exactly cmd/freqd's startup sequence.
func durableNode(t *testing.T, dir string, phi float64, epoch uint64) (*serve.Server, *persist.Store) {
	t.Helper()
	target := core.NewConcurrent(streamfreq.MustNew("SSH", phi, 1))
	store, err := persist.Open(persist.Options{
		Dir:    dir,
		Algo:   "SSH",
		Fsync:  persist.FsyncAlways, // every acknowledged wire write survives the kill
		Decode: streamfreq.Decode,
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := store.Recover(target); err != nil {
		t.Fatalf("recover %s: %v", dir, err)
	}
	target.PersistTo(store)
	target.ServeSnapshots(0)
	return serve.NewServer(serve.Options{Target: target, Algo: "SSH", Store: store, Epoch: epoch}), store
}

func TestClusterE2EKillRecover(t *testing.T) {
	const (
		phi     = 0.001
		streamN = 200_000
		rounds  = 8
	)
	g, err := zipf.NewGenerator(1<<15, 1.1, 0xD00D, true)
	if err != nil {
		t.Fatal(err)
	}
	items := g.Stream(streamN)
	// Disjoint partition of the arrival sequence: even-indexed arrivals
	// to node 0, odd to node 1 (hot items land on both nodes — the
	// interesting merge case, counts must add not max).
	var parts [2][]core.Item
	for i, it := range items {
		parts[i%2] = append(parts[i%2], it)
	}

	dirs := [2]string{t.TempDir(), t.TempDir()}
	var sws [2]*swappable
	var urls []string
	servers := [2]*serve.Server{}
	for i := 0; i < 2; i++ {
		srv, _ := durableNode(t, dirs[i], phi, uint64(1000+i))
		servers[i] = srv
		sws[i] = &swappable{}
		sws[i].set(srv.Handler())
		ts := httptest.NewServer(sws[i])
		defer ts.Close()
		urls = append(urls, ts.URL)
	}

	coord, err := cluster.New(cluster.Options{
		Nodes:        urls,
		MergeEncoded: streamfreq.MergeEncoded,
		Epoch:        7,
	})
	if err != nil {
		t.Fatal(err)
	}
	cs := httptest.NewServer(coord.Handler())
	defer cs.Close()
	ctx := context.Background()

	// Ingest in rounds, pulling between them like the timer would. Node
	// 0 is killed after round 3 (kill -9: handler swapped to down, store
	// abandoned un-closed) and recovered after round 5; its partition's
	// rounds 4-5 are deferred until it is back — a dead node accepts no
	// writes.
	share := func(p []core.Item, r int) []core.Item {
		lo, hi := r*len(p)/rounds, (r+1)*len(p)/rounds
		return p[lo:hi]
	}
	var deferred []core.Item
	ingestedTotal := 0
	for r := 0; r < rounds; r++ {
		if r < 4 || r >= 6 {
			chunk := share(parts[0], r)
			if len(deferred) > 0 {
				chunk = append(append([]core.Item{}, deferred...), chunk...)
				deferred = nil
			}
			ingest(t, urls[0], chunk)
			ingestedTotal += len(chunk)
		} else {
			deferred = append(deferred, share(parts[0], r)...)
		}
		ingest(t, urls[1], share(parts[1], r))
		ingestedTotal += len(share(parts[1], r))

		coord.PullAll(ctx)

		switch r {
		case 3:
			// Kill node 0 without warning: no checkpoint, no Close.
			sws[0].set(down())
		case 5:
			// Recover: a new life over the same WAL dir, same URL, new
			// epoch — the summary it now ships is cumulative (checkpoint
			// + WAL replay), so replacement must not double-count.
			srv, _ := durableNode(t, dirs[0], phi, 2000)
			sws[0].set(srv.Handler())
		}
	}
	if ingestedTotal != streamN {
		t.Fatalf("test wiring: ingested %d of %d items", ingestedTotal, streamN)
	}

	coord.PullAll(ctx)

	// No double counting: the merged stream position is exactly the
	// number of arrivals acknowledged across both nodes, despite node 0
	// having been pulled before the kill, served stale during it, and
	// re-pulled (cumulative) after recovery.
	if got := coord.N(); got != int64(streamN) {
		t.Fatalf("merged N = %d, want exactly %d (double-counted or lost across the restart)", got, streamN)
	}

	// The restart is observable: node 0's epoch changed once.
	st := coord.Stats()
	if st.Nodes[0].Restarts != 1 {
		t.Fatalf("node 0 restarts = %d, want 1 (stats: %+v)", st.Nodes[0].Restarts, st.Nodes[0])
	}
	if st.Nodes[0].Epoch != 2000 {
		t.Fatalf("node 0 epoch = %d, want the recovered life's 2000", st.Nodes[0].Epoch)
	}
	if st.Nodes[1].Restarts != 0 {
		t.Fatalf("node 1 restarts = %d, want 0", st.Nodes[1].Restarts)
	}

	// Recall 1 at φ·N_total against exact truth on the union stream,
	// through the coordinator's public /topk.
	truth := exact.New()
	for _, it := range items {
		truth.Update(it, 1)
	}
	threshold := int64(phi * float64(streamN))
	var tr topkResponse
	getJSON(t, cs.URL+fmt.Sprintf("/topk?phi=%g", phi), &tr)
	if tr.N != int64(streamN) || tr.Threshold != threshold {
		t.Fatalf("/topk n=%d threshold=%d, want %d/%d", tr.N, tr.Threshold, streamN, threshold)
	}
	report := make([]core.ItemCount, len(tr.Items))
	for i, it := range tr.Items {
		report[i] = core.ItemCount{Item: core.Item(it.Item), Count: it.Count}
	}
	truthMap := metrics.TruthMap(truth.TopK(truth.Distinct()), threshold)
	if acc := metrics.Evaluate(report, truthMap); acc.Recall != 1 {
		t.Fatalf("recall at φ·N_total = %v, want perfect: %s", acc.Recall, acc)
	}
	// Merged Space-Saving still never underestimates: every reported
	// count is ≥ its true union count.
	for _, ic := range report {
		if tru := truth.Estimate(ic.Item); ic.Count < tru {
			t.Fatalf("merged estimate %d underestimates true %d (item %#x)", ic.Count, tru, uint64(ic.Item))
		}
	}
}

// TestClusterRunLoop exercises the timer path: Run pulls on its own
// until cancelled, so a coordinator needs no manual PullAll calls.
func TestClusterRunLoop(t *testing.T) {
	ts, _, _ := node(t, "SSH", 0.01, 5)
	defer ts.Close()
	ingest(t, ts.URL, zipf.Sequential(2_000))

	coord, err := cluster.New(cluster.Options{
		Nodes:        []string{ts.URL},
		Interval:     5 * time.Millisecond,
		MergeEncoded: streamfreq.MergeEncoded,
	})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	go coord.Run(ctx)

	deadline := time.After(5 * time.Second)
	for coord.N() != 2_000 {
		select {
		case <-deadline:
			t.Fatalf("Run never converged: merged N = %d, want 2000", coord.N())
		case <-time.After(2 * time.Millisecond):
		}
	}
	// More ingest is picked up by the next tick without intervention.
	ingest(t, ts.URL, zipf.Sequential(500))
	for coord.N() != 2_500 {
		select {
		case <-deadline:
			t.Fatalf("Run never saw the second ingest: merged N = %d, want 2500", coord.N())
		case <-time.After(2 * time.Millisecond):
		}
	}
}
