package cluster_test

// The PR-7 acceptance scenario end to end, all on loopback HTTP: a
// freqrouter over 3 shards × 2 durable replicas, a partition-exact
// coordinator reading the router's shard map, and a chaos schedule that
// kills one follower and one primary mid-ingest (kill -9: handler
// swapped to down, store abandoned un-closed, no checkpoint) and
// recovers both from their WALs under new epochs. The wall:
//
//   - merged N equals acknowledged arrivals exactly — no loss from the
//     kills (each shard kept a survivor holding every acked item), no
//     double-count from the recoveries (one replica per shard, epochs
//     replace never add);
//   - merged /topk recall is 1 at φ·N against internal/exact over the
//     union stream;
//   - the restarts are observable in the router's shard map.

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"streamfreq"
	"streamfreq/internal/cluster"
	"streamfreq/internal/core"
	"streamfreq/internal/exact"
	"streamfreq/internal/metrics"
	"streamfreq/internal/obs"
	"streamfreq/internal/router"
	"streamfreq/internal/stream"
	"streamfreq/internal/zipf"
)

// ingestAck is the router's ingest response; postItems posts a binary
// batch and returns it with the status, letting chaos rounds assert on
// shed counts where the plain ingest helper would just fail.
type ingestAck struct {
	Ingested int64 `json:"ingested"`
	Shed     int64 `json:"shed"`
	N        int64 `json:"n"`
}

func postItems(t *testing.T, url string, items []core.Item) (ingestAck, int) {
	t.Helper()
	resp, err := http.Post(url+"/ingest", "application/octet-stream",
		bytes.NewReader(stream.AppendRaw(nil, items)))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var ack ingestAck
	if err := json.NewDecoder(resp.Body).Decode(&ack); err != nil {
		t.Fatalf("decoding ingest ack: %v", err)
	}
	return ack, resp.StatusCode
}

func TestRouterKillRecover(t *testing.T) {
	const (
		phi     = 0.001
		streamN = 150_000
		rounds  = 10
		shards  = 3
		reps    = 2
	)
	g, err := zipf.NewGenerator(1<<15, 1.1, 0xFEED, true)
	if err != nil {
		t.Fatal(err)
	}
	items := g.Stream(streamN)

	// 3 shards × 2 durable replicas, every replica its own WAL dir and
	// swappable URL. FsyncAlways: every acknowledged write survives the
	// kill.
	var (
		cfgs []router.ShardConfig
		dirs [shards][reps]string
		sws  [shards][reps]*swappable
	)
	epoch := uint64(100)
	for s := 0; s < shards; s++ {
		cfg := router.ShardConfig{ID: fmt.Sprintf("shard-%d", s)}
		for r := 0; r < reps; r++ {
			dirs[s][r] = t.TempDir()
			srv, _ := durableNode(t, dirs[s][r], phi, epoch)
			epoch++
			sws[s][r] = &swappable{}
			sws[s][r].set(srv.Handler())
			ts := httptest.NewServer(sws[s][r])
			defer ts.Close()
			cfg.Replicas = append(cfg.Replicas, ts.URL)
		}
		cfgs = append(cfgs, cfg)
	}

	rt, err := router.New(router.Options{
		Shards:  cfgs,
		Retries: 1,
		Backoff: time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	rs := httptest.NewServer(rt.Handler())
	defer rs.Close()

	// The coordinator discovers the topology the way freqmerge -router
	// does: by pulling the published shard map.
	ctx := context.Background()
	m, err := router.FetchShardMap(ctx, nil, rs.URL)
	if err != nil {
		t.Fatal(err)
	}
	coord, err := cluster.New(cluster.Options{
		ShardMap:     m,
		MergeEncoded: streamfreq.MergeEncoded,
		Epoch:        7,
	})
	if err != nil {
		t.Fatal(err)
	}
	cs := httptest.NewServer(coord.Handler())
	defer cs.Close()

	// Ingest in rounds through the router, pulling between rounds like
	// the coordinator's timer would. After round 3, kill shard 0's
	// follower and shard 1's primary; after round 6, recover both from
	// their WALs under new epochs and force a probe so the router
	// re-adopts them mid-run.
	var acked int64
	for r := 0; r < rounds; r++ {
		lo, hi := r*streamN/rounds, (r+1)*streamN/rounds
		ack, code := postItems(t, rs.URL, items[lo:hi])
		if code != 200 || ack.Shed != 0 {
			t.Fatalf("round %d: ack=%+v HTTP %d, want every item acked (each shard kept a survivor)", r, ack, code)
		}
		acked += ack.Ingested

		coord.PullAll(ctx)

		switch r {
		case 3:
			sws[0][1].set(down()) // a follower dies
			sws[1][0].set(down()) // a primary dies
		case 6:
			srv01, _ := durableNode(t, dirs[0][1], phi, 9001)
			sws[0][1].set(srv01.Handler())
			srv10, _ := durableNode(t, dirs[1][0], phi, 9010)
			sws[1][0].set(srv10.Handler())
			rt.Probe(ctx)
		}
	}
	coord.PullAll(ctx)

	if acked != int64(streamN) {
		t.Fatalf("router acknowledged %d of %d arrivals (nothing should shed: every shard kept a survivor)", acked, streamN)
	}

	// The wall: merged N equals acknowledged arrivals exactly. Loss
	// would show as less (a shard serving a behind replica), double-
	// counting as more (replica-summing or a restart added twice).
	if got := coord.N(); got != acked {
		t.Fatalf("merged N = %d, want exactly the %d acknowledged arrivals", got, acked)
	}

	// Partition-exact serving picked exactly one replica per shard.
	st := coord.Stats()
	if !st.Partitioned || st.Shards != shards || st.Missing != 0 {
		t.Fatalf("coordinator stats: partitioned=%v shards=%d missing=%d, want true/%d/0",
			st.Partitioned, st.Shards, st.Missing, shards)
	}
	picked := 0
	for _, ns := range st.Nodes {
		if ns.Picked {
			picked++
		}
	}
	if picked != shards {
		t.Fatalf("%d replicas picked, want exactly one per shard (%d); stats: %+v", picked, shards, st.Nodes)
	}

	// The kills are observable: both recovered replicas came back under
	// new epochs, counted as exactly one restart each by the router.
	sm := rt.ShardMap()
	for _, pos := range [][2]int{{0, 1}, {1, 0}} {
		rep := sm.Shards[pos[0]].Replicas[pos[1]]
		if !rep.Healthy || rep.Restarts != 1 {
			t.Fatalf("killed replica shard%d[%d]: %+v, want healthy with 1 restart", pos[0], pos[1], rep)
		}
	}
	for _, pos := range [][2]int{{0, 0}, {1, 1}, {2, 0}, {2, 1}} {
		if rep := sm.Shards[pos[0]].Replicas[pos[1]]; rep.Restarts != 0 {
			t.Fatalf("surviving replica shard%d[%d] shows %d restarts, want 0", pos[0], pos[1], rep.Restarts)
		}
	}

	// The split observability counters tell the same chaos story with
	// exact numbers: each killed replica fails one forward (burning the
	// single configured retry — 503 is retryable) and is marked down on
	// that failure, then the post-recovery probe re-adopts both. Nothing
	// sheds and every arrival is counted routed exactly once.
	ctrs := rt.Counters()
	for key, want := range map[string]int64{
		"router.down_marks":   2, // two live→down transitions, one per kill
		"router.readoptions":  2, // two down→live transitions, both from the probe
		"router.retries":      2, // Retries:1 burned once per killed replica
		"router.shed_items":   0, // every shard kept a survivor
		"router.routed_items": int64(streamN),
	} {
		if got := ctrs.Get(key); got != want {
			t.Errorf("%s = %d, want %d", key, got, want)
		}
	}

	// And the same numbers are scrapeable: the router's /v1/metrics
	// exposition carries the split series plus the per-shard restart
	// counters, summing to the two observed restarts.
	mresp, err := http.Get(rs.URL + "/v1/metrics")
	if err != nil {
		t.Fatal(err)
	}
	fams, err := obs.ParseExposition(mresp.Body)
	mresp.Body.Close()
	if err != nil {
		t.Fatalf("router /v1/metrics did not parse: %v", err)
	}
	for fam, want := range map[string]float64{
		"freq_router_down_marks_total":  2,
		"freq_router_readoptions_total": 2,
		"freq_router_retries_total":     2,
		"freq_router_shed_items_total":  0,
	} {
		f, ok := fams[fam]
		if !ok {
			t.Errorf("family %s missing from the router scrape", fam)
			continue
		}
		var sum float64
		for _, s := range f.Series {
			sum += s.Value
		}
		if sum != want {
			t.Errorf("scraped %s = %v, want %v", fam, sum, want)
		}
	}
	restarts, ok := fams["freq_router_replica_restarts_total"]
	if !ok {
		t.Fatalf("freq_router_replica_restarts_total missing from the router scrape")
	}
	var restartSum float64
	shardsSeen := map[string]bool{}
	for _, s := range restarts.Series {
		restartSum += s.Value
		shardsSeen[s.Labels["shard"]] = true
	}
	if restartSum != 2 || len(shardsSeen) != shards {
		t.Fatalf("scraped replica restarts: sum=%v across %d shards, want 2 across %d",
			restartSum, len(shardsSeen), shards)
	}

	// A durable replica's own scrape carries the WAL series, populated
	// by the chaos workload: FsyncAlways means every forwarded batch
	// fsynced, so the survivor of shard 0 has non-zero fsync and append
	// activity and zero unsynced lag.
	wresp, err := http.Get(cfgs[0].Replicas[0] + "/v1/metrics")
	if err != nil {
		t.Fatal(err)
	}
	wfams, err := obs.ParseExposition(wresp.Body)
	wresp.Body.Close()
	if err != nil {
		t.Fatalf("replica /v1/metrics did not parse: %v", err)
	}
	for _, fam := range []string{
		"freq_wal_append_seconds", "freq_wal_fsync_seconds",
		"freq_wal_fsyncs_total", "freq_wal_durable_n", "freq_wal_lag_items",
	} {
		if _, ok := wfams[fam]; !ok {
			t.Errorf("family %s missing from the durable replica scrape", fam)
		}
	}
	for fam, positive := range map[string]bool{
		"freq_wal_fsyncs_total": true,
		"freq_wal_durable_n":    true,
		"freq_wal_lag_items":    false,
	} {
		f := wfams[fam]
		if f == nil || len(f.Series) == 0 {
			continue // already reported missing above
		}
		if v := f.Series[0].Value; positive && v <= 0 {
			t.Errorf("scraped %s = %v, want > 0 after the durable workload", fam, v)
		} else if !positive && v != 0 {
			t.Errorf("scraped %s = %v, want 0 (FsyncAlways leaves no unsynced lag)", fam, v)
		}
	}

	// Recall 1 at φ·N against exact truth over the union stream,
	// through the coordinator's public /topk.
	truth := exact.New()
	for _, it := range items {
		truth.Update(it, 1)
	}
	threshold := int64(phi * float64(streamN))
	var tr topkResponse
	getJSON(t, cs.URL+fmt.Sprintf("/topk?phi=%g", phi), &tr)
	if tr.N != int64(streamN) || tr.Threshold != threshold {
		t.Fatalf("/topk n=%d threshold=%d, want %d/%d", tr.N, tr.Threshold, streamN, threshold)
	}
	report := make([]core.ItemCount, len(tr.Items))
	for i, it := range tr.Items {
		report[i] = core.ItemCount{Item: core.Item(it.Item), Count: it.Count}
	}
	truthMap := metrics.TruthMap(truth.TopK(truth.Distinct()), threshold)
	if acc := metrics.Evaluate(report, truthMap); acc.Recall != 1 {
		t.Fatalf("recall at φ·N = %v, want perfect: %s", acc.Recall, acc)
	}
	// Per-partition Space-Saving never underestimates, and the
	// partition-exact view preserves that: every reported count is ≥
	// its true union count.
	for _, ic := range report {
		if tru := truth.Estimate(ic.Item); ic.Count < tru {
			t.Fatalf("partitioned estimate %d underestimates true %d (item %#x)", ic.Count, tru, uint64(ic.Item))
		}
	}

	// A partitioned view is deliberately not exportable as one blob.
	resp, err := http.Get(cs.URL + "/summary")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != 501 {
		t.Fatalf("partitioned /summary: HTTP %d, want 501 (collapsing it would trade away the per-partition bounds)", resp.StatusCode)
	}
}
