package cluster

import (
	"context"
	"fmt"
	"io"
	"net/http"
	"sort"
	"strconv"
	"strings"
	"time"

	"streamfreq/internal/core"
	"streamfreq/internal/obs"
	"streamfreq/internal/serve"
	"streamfreq/internal/tenant"
)

// Tenant-merge mode: instead of one /summary blob per node, the
// coordinator pulls each node's GET /v1/tenants/summary bundle — every
// namespace's encoded summary in one frame — and merges the cluster
// per namespace. The merged result answers /v1/t/{ns}/topk and
// /v1/t/{ns}/estimate over the union stream of that namespace alone,
// with the same guarantees the flat merge gives the whole stream; the
// un-namespaced routes keep serving the merged default namespace.
//
// The pull still ships full cumulative state and the coordinator still
// replaces a node's contribution wholesale, so restarts and retries
// cannot double-count — the tenant table's WAL replay restores every
// namespace before the node answers its first bundle pull.

// pullTenantInto fetches one node's tenant bundle, decodes every
// namespace, and records the outcome in ns — the tenant-mode analogue
// of the pullNode + bookkeeping pair in PullAll.
func (c *Coordinator) pullTenantInto(ctx context.Context, ns *nodeState) {
	sums, epoch, err := c.pullTenantBundle(ctx, ns)

	c.mu.Lock()
	defer c.mu.Unlock()
	if err != nil {
		ns.failures++
		ns.lastErr = err.Error()
		c.counters.Add("pulls.failed", 1)
		return
	}
	var total int64
	for nsName, sum := range sums {
		algo := sum.Name()
		if c.algo == "" {
			c.algo = algo
		}
		if algo != c.algo {
			ns.failures++
			ns.lastErr = fmt.Sprintf("algorithm mismatch in namespace %q: node serves %s, cluster is %s", nsName, algo, c.algo)
			c.counters.Add("pulls.mismatched", 1)
			return
		}
		total += sum.N()
	}
	if ns.epoch != 0 && epoch != ns.epoch {
		ns.restarts++
		c.counters.Add("nodes.restarts", 1)
	}
	ns.tenantSums, ns.n, ns.epoch = sums, total, epoch
	ns.sum = sums[""] // the default namespace backs the un-namespaced view
	if ns.sum != nil {
		ns.algo = ns.sum.Name()
	} else {
		ns.algo = c.algo
	}
	ns.lastPull = time.Now()
	ns.pulls++
	ns.lastErr = ""
	c.counters.Add("pulls.ok", 1)
}

// pullTenantBundle fetches and decodes one node's namespace bundle.
func (c *Coordinator) pullTenantBundle(ctx context.Context, ns *nodeState) (map[string]core.Summary, uint64, error) {
	defer c.pullH.ObserveSince(time.Now())
	ctx, cancel := context.WithTimeout(ctx, c.timeout)
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, ns.url+"/v1/tenants/summary", nil)
	if err != nil {
		return nil, 0, err
	}
	if tid := obs.TraceFrom(ctx); tid != "" {
		req.Header.Set(obs.TraceHeader, tid)
	}
	resp, err := c.client.Do(req)
	if err != nil {
		return nil, 0, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		body, _ := io.ReadAll(io.LimitReader(resp.Body, 512))
		return nil, 0, fmt.Errorf("GET /v1/tenants/summary: %s: %s", resp.Status, strings.TrimSpace(string(body)))
	}
	blob, err := io.ReadAll(io.LimitReader(resp.Body, maxSummaryBytes+1))
	if err != nil {
		return nil, 0, fmt.Errorf("reading bundle body: %w", err)
	}
	if len(blob) > maxSummaryBytes {
		return nil, 0, fmt.Errorf("bundle body exceeds %d bytes", maxSummaryBytes)
	}
	epoch, err := strconv.ParseUint(resp.Header.Get(serve.HeaderEpoch), 10, 64)
	if err != nil {
		return nil, 0, fmt.Errorf("bad %s header %q", serve.HeaderEpoch, resp.Header.Get(serve.HeaderEpoch))
	}
	entries, err := tenant.DecodeBundle(blob)
	if err != nil {
		return nil, 0, err
	}
	sums := make(map[string]core.Summary, len(entries))
	for _, e := range entries {
		sum, err := c.merge(e.Blob)
		if err != nil {
			return nil, 0, fmt.Errorf("undecodable summary for namespace %q: %w", e.NS, err)
		}
		sums[e.NS] = sum
	}
	return sums, epoch, nil
}

// rebuildTenants merges the latest good bundles namespace by
// namespace and publishes the result: the merged default namespace as
// the un-namespaced serving view, the whole map behind the /v1/t/...
// routes. Staleness handling matches the flat rebuild — a node past
// -max-stale sits out every namespace.
func (c *Coordinator) rebuildTenants() {
	c.mu.Lock()
	perNS := make(map[string][]core.Summary)
	fresh, have, dropped := 0, 0, 0
	anyData := false
	for _, ns := range c.nodes {
		ns.dropped = false
		if ns.tenantSums == nil {
			continue
		}
		anyData = true
		if c.maxStale > 0 && time.Since(ns.lastPull) > c.maxStale {
			ns.dropped = true
			dropped++
			continue
		}
		for name, sum := range ns.tenantSums {
			perNS[name] = append(perNS[name], sum)
		}
		have++
		if ns.lastErr == "" {
			fresh++
		}
	}
	c.mu.Unlock()

	if !anyData {
		return // before the first good pull
	}
	merged := make(map[string]core.Summary, len(perNS))
	for name, sums := range perNS {
		m, err := mergeSummaries(sums)
		if err != nil {
			c.mu.Lock()
			c.mergeErr = fmt.Sprintf("namespace %q: %v", name, err)
			c.mu.Unlock()
			c.counters.Add("merges.failed", 1)
			return
		}
		merged[name] = m
	}
	c.mu.Lock()
	c.mergeErr = ""
	c.mu.Unlock()
	mv := &mergedView{builtAt: time.Now(), fresh: fresh, have: have, dropped: dropped, tenants: merged}
	if def, ok := merged[""]; ok {
		mv.view = def
	}
	c.merged.Store(mv)
	c.merges.Add(1)
	c.counters.Add("merges.ok", 1)
}

// mergedTenant returns the current merged view of one namespace.
func (c *Coordinator) mergedTenant(name string) (core.Summary, bool) {
	v := c.merged.Load()
	if v == nil || v.tenants == nil {
		return nil, false
	}
	sum, ok := v.tenants[name]
	return sum, ok
}

// handleTenantTopK answers /v1/t/{ns}/topk over the merged namespace.
func (c *Coordinator) handleTenantTopK(w http.ResponseWriter, r *http.Request) {
	name := r.PathValue("ns")
	sum, ok := c.mergedTenant(name)
	if !ok {
		serve.HTTPError(w, http.StatusNotFound, "namespace %q has no merged data on this coordinator", name)
		return
	}
	q := serve.QueryHandlers{View: func() core.ReadView { return sum }, Counters: c.counters}
	q.TopK(w, r)
}

// handleTenantEstimate answers /v1/t/{ns}/estimate over the merged
// namespace.
func (c *Coordinator) handleTenantEstimate(w http.ResponseWriter, r *http.Request) {
	name := r.PathValue("ns")
	sum, ok := c.mergedTenant(name)
	if !ok {
		serve.HTTPError(w, http.StatusNotFound, "namespace %q has no merged data on this coordinator", name)
		return
	}
	q := serve.QueryHandlers{View: func() core.ReadView { return sum }, Counters: c.counters}
	q.Estimate(w, r)
}

// handleTenants lists the merged namespaces with their union-stream
// positions.
func (c *Coordinator) handleTenants(w http.ResponseWriter, r *http.Request) {
	v := c.merged.Load()
	type row struct {
		NS string `json:"ns"`
		N  int64  `json:"n"`
	}
	rows := []row{}
	if v != nil {
		for name, sum := range v.tenants {
			rows = append(rows, row{NS: name, N: sum.N()})
		}
	}
	sort.Slice(rows, func(i, j int) bool { return rows[i].NS < rows[j].NS })
	serve.WriteJSON(w, http.StatusOK, map[string]any{
		"namespaces": rows,
	})
}
