// Package cluster turns N freqd nodes into one logical summary: a
// coordinator periodically pulls each node's GET /summary blob, decodes
// and merges them through the registry Merger machinery, and serves the
// merged state over the same query API as a single node — the paper's X2
// merge experiment as a network service. Counter and sketch summaries
// are mergeable with their guarantees intact, so the coordinator answers
// frequent-items queries over the union of the node streams with the
// per-node provisioning (same φ, same seed) and no raw-stream shipping.
//
// The protocol is pull-based and stateless on the nodes: every pull
// ships a node's full cumulative state, and the coordinator replaces
// that node's contribution wholesale — never adds to it — so re-pulls,
// retries, and node restarts (a durable node replays its WAL and comes
// back cumulative) cannot double-count. The node's process epoch
// (X-Freq-Epoch) makes restarts observable: a changed epoch increments
// the node's restart counter in /stats, and a restart that lost state
// (no WAL) simply ships a smaller summary, which replacement handles the
// same way.
//
// Failure model: a node that cannot be reached, or ships a blob that
// does not decode, keeps its last good summary in the merge — served
// stale, with the staleness and the error surfaced per node in /stats —
// unless Options.MaxStale bounds the staleness, in which case the node's
// contribution is dropped (reflected in /stats and the merged N) until a
// pull succeeds again: partial-but-fresh for consumers that prefer it
// over complete-but-stale. A node running a different algorithm is
// rejected with a clear error and contributes nothing (merging
// incompatible summaries would either fail or, worse, silently mix
// estimators).
//
// Windowed nodes (freqd -window) merge like any other: their WN01 blobs
// decode to window.Windowed, whose Merge unions the nodes' recent
// windows block-by-block aligned by recency, so a coordinator over
// windowed nodes serves cluster-wide *recent* heavy hitters. Geometry
// mismatches (different W, B, or k) are per-merge errors like any
// parameter mismatch.
package cluster

import (
	"context"
	"fmt"
	"io"
	"log/slog"
	"net/http"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"streamfreq/internal/core"
	"streamfreq/internal/obs"
	"streamfreq/internal/router"
	"streamfreq/internal/serve"
)

// maxSummaryBytes bounds one node's /summary body: summaries are
// O(counters), so even generous provisioning is megabytes — a longer
// body is a broken or hostile node, not data.
const maxSummaryBytes = 256 << 20

// Options configures a Coordinator.
type Options struct {
	// Nodes lists the base URLs of the freqd nodes to aggregate
	// (required, e.g. "http://10.0.0.1:8080"). A trailing slash is
	// tolerated.
	Nodes []string
	// Interval is the pull cadence of Run (default 1s).
	Interval time.Duration
	// Timeout bounds one node pull (default 5s).
	Timeout time.Duration
	// Algo, when set, is the algorithm label every node must serve
	// (compared against the decoded summary's Name). Empty adopts the
	// first successfully decoded summary's algorithm.
	Algo string
	// MaxStale, when positive, is the freshness SLO: a node whose last
	// good pull is older than this stops contributing to the merged view
	// (dropped, not served stale), for consumers that prefer partial-
	// but-fresh over complete-but-stale. The drop is surfaced per node
	// in Stats and reflected in the merged N; the node's state is kept,
	// so it rejoins the merge the moment a pull succeeds again. The
	// bound is evaluated at each rebuild (every Interval tick and every
	// /refresh), so a contribution can overshoot it by at most one
	// Interval before it leaves the serving view — size MaxStale with
	// that slack in mind. 0 (the default) serves stale contributions
	// indefinitely.
	MaxStale time.Duration
	// MergeEncoded decodes and merges registry blobs (required —
	// streamfreq.MergeEncoded; injected so this package, like
	// internal/persist, stays decoupled from the registry). The
	// coordinator calls it with one blob per pull — the decode side —
	// and folds the decoded summaries itself via Snapshotter/Merger, so
	// nothing is decoded twice.
	MergeEncoded func(blobs ...[]byte) (core.Summary, error)
	// TenantMerge, when set, pulls each node's GET /v1/tenants/summary
	// bundle instead of the flat /summary and merges the cluster
	// namespace by namespace; the /v1/t/{ns}/... read routes come alive
	// on the coordinator and the un-namespaced routes serve the merged
	// default namespace. Incompatible with ShardMap (the write tier
	// shards the flat stream, not namespaces).
	TenantMerge bool
	// ShardMap, when set, switches the coordinator to partitioned mode:
	// Nodes is ignored and the topology comes from the write tier's
	// published shard map (router.FetchShardMap) — every replica of
	// every shard is pulled, but the serving view holds exactly one
	// replica per shard (the highest acknowledged position), routed by
	// the map's hash ring. Replicas of a shard saw the same substream,
	// so merging or summing them would double-count; and the shards are
	// disjoint partitions, so the view answers with per-partition error
	// bounds instead of merge-inflated ones (see PartitionedView).
	ShardMap *router.ShardMap
	// Epoch identifies this coordinator process on its own GET /summary
	// (coordinators stack); 0 draws one from the clock.
	Epoch uint64
	// Client is the HTTP client for pulls (default:
	// router.NewHTTPClient(Timeout), the shared intra-cluster transport
	// config; Timeout is applied per request either way).
	Client *http.Client
	// Obs is the observability plane: metric registry, structured
	// logger, slow-query threshold. Defaults to obs.Discard
	// ("freqmerge") — metrics still accumulate, logs go nowhere.
	Obs *obs.Obs
}

// nodeState is the coordinator's view of one freqd node. All fields are
// guarded by Coordinator.mu; sum is replaced wholesale on every
// successful pull and never mutated afterwards (Merge reads its operand
// without modifying it), so a rebuild can merge a reference to it
// outside the lock.
type nodeState struct {
	url   string
	shard int // ring shard index in partitioned mode; -1 in flat mode

	sum        core.Summary            // last good decoded summary; nil until the first pull
	tenantSums map[string]core.Summary // tenant mode: last good bundle, one summary per namespace
	n          int64                   // its stream position (tenant mode: sum over namespaces)
	epoch      uint64                  // node process epoch of the last good pull
	algo       string                  // its algorithm name
	lastPull   time.Time

	pulls    int64
	failures int64
	restarts int64
	lastErr  string // error of the most recent attempt; "" on success
	dropped  bool   // excluded from the last rebuild by the -max-stale bound
	picked   bool   // the replica serving its shard in the last partitioned rebuild
}

// mergedView is one immutable published epoch of the cluster-wide
// serving state: a single merged summary in flat mode, a
// PartitionedView in partitioned mode. view is nil when every known
// contribution was dropped by the freshness SLO — the coordinator then
// serves the empty stream, exactly like before the first pull.
type mergedView struct {
	view    core.ReadView
	builtAt time.Time
	fresh   int // nodes whose latest pull succeeded
	have    int // nodes contributing (fresh or stale)
	dropped int // nodes with data excluded by the -max-stale bound
	missing int // shards with no usable contribution (partitioned mode)

	// tenants holds the per-namespace merged summaries in tenant-merge
	// mode (nil otherwise). Immutable once published, like view.
	tenants map[string]core.Summary
}

// Coordinator pulls, merges, and serves; see the package comment.
type Coordinator struct {
	nodes    []*nodeState
	ring     *router.Ring // non-nil in partitioned mode
	shardIDs []string     // shard names, index-aligned with the ring
	interval time.Duration
	timeout  time.Duration
	maxStale time.Duration
	client   *http.Client
	merge    func(blobs ...[]byte) (core.Summary, error)
	epoch    uint64
	obs      *obs.Obs
	counters *obs.Set
	pullH    *obs.Histogram
	start    time.Time

	tenanted bool // pull and merge per-namespace tenant bundles

	mu       sync.Mutex // guards nodeState fields, algo, mergeErr
	algo     string
	mergeErr string

	// rebuildMu serializes merged-view rebuilds (the Run ticker and POST
	// /refresh can overlap): without it, a rebuild that snapshotted older
	// blobs could finish its merge after — and publish over — a newer
	// view, making the served N move backward right after /refresh
	// acknowledged the fresher state.
	rebuildMu sync.Mutex

	merged atomic.Pointer[mergedView]
	merges atomic.Int64
}

// New validates opts and returns a Coordinator. No network traffic
// happens until PullAll or Run.
func New(opts Options) (*Coordinator, error) {
	if len(opts.Nodes) == 0 && opts.ShardMap == nil {
		return nil, fmt.Errorf("cluster: at least one node URL (or a shard map) is required")
	}
	if opts.MergeEncoded == nil {
		return nil, fmt.Errorf("cluster: Options.MergeEncoded is required (streamfreq.MergeEncoded)")
	}
	if opts.TenantMerge && opts.ShardMap != nil {
		return nil, fmt.Errorf("cluster: -tenants and a shard map are incompatible (the write tier shards the flat stream, not namespaces)")
	}
	if opts.Interval <= 0 {
		opts.Interval = time.Second
	}
	if opts.Timeout <= 0 {
		opts.Timeout = 5 * time.Second
	}
	if opts.Client == nil {
		opts.Client = router.NewHTTPClient(opts.Timeout)
	}
	if opts.Epoch == 0 {
		opts.Epoch = uint64(time.Now().UnixNano())
	}
	if opts.Obs == nil {
		opts.Obs = obs.Discard("freqmerge")
	}
	c := &Coordinator{
		interval: opts.Interval,
		timeout:  opts.Timeout,
		maxStale: opts.MaxStale,
		client:   opts.Client,
		merge:    opts.MergeEncoded,
		epoch:    opts.Epoch,
		algo:     opts.Algo,
		tenanted: opts.TenantMerge,
		obs:      opts.Obs,
		counters: obs.NewSet(opts.Obs.Reg, "freq"),
		start:    time.Now(),
	}
	seen := make(map[string]bool)
	addNode := func(u string, shard int) error {
		u = strings.TrimRight(strings.TrimSpace(u), "/")
		if u == "" {
			return fmt.Errorf("cluster: empty node URL")
		}
		if !strings.Contains(u, "://") {
			u = "http://" + u
		}
		if seen[u] {
			return fmt.Errorf("cluster: duplicate node %s (its stream would be merged twice)", u)
		}
		seen[u] = true
		c.nodes = append(c.nodes, &nodeState{url: u, shard: shard})
		return nil
	}
	if opts.ShardMap != nil {
		ring, err := opts.ShardMap.Ring()
		if err != nil {
			return nil, err
		}
		c.ring = ring
		for si, sh := range opts.ShardMap.Shards {
			if len(sh.Replicas) == 0 {
				return nil, fmt.Errorf("cluster: shard %q has no replicas in the shard map", sh.ID)
			}
			c.shardIDs = append(c.shardIDs, sh.ID)
			for _, rep := range sh.Replicas {
				if err := addNode(rep.URL, si); err != nil {
					return nil, err
				}
			}
		}
		c.bindMetrics()
		return c, nil
	}
	for _, u := range opts.Nodes {
		if err := addNode(u, -1); err != nil {
			return nil, err
		}
	}
	c.bindMetrics()
	return c, nil
}

// bindMetrics registers the coordinator's scrape-time collectors: pull
// latency plus merge/staleness gauges mirroring the cluster section of
// /stats. Called once from New; per-node rows stay out of the metric
// space (node URLs are unbounded label values), the aggregate health
// counts carry the signal.
func (c *Coordinator) bindMetrics() {
	reg := c.obs.Reg
	c.pullH = reg.Histogram("freq_pull_seconds",
		"Latency of one node summary pull (request, read, decode).", obs.LatencyOpts())
	reg.CounterFunc("freq_merges_total", "Merged-view rebuilds published.",
		func() float64 { return float64(c.merges.Load()) })
	reg.GaugeFunc("freq_merge_age_seconds", "Age of the serving merged view.",
		func() float64 {
			if v := c.merged.Load(); v != nil {
				return time.Since(v.builtAt).Seconds()
			}
			return 0
		})
	reg.GaugeFunc("freq_merged_n", "Stream position of the merged serving view.",
		func() float64 { return float64(c.N()) })
	reg.GaugeFunc("freq_cluster_nodes", "Nodes (or shard replicas) the coordinator pulls.",
		func() float64 { return float64(len(c.nodes)) })
	reg.GaugeFunc("freq_cluster_fresh_nodes", "Nodes fresh in the serving view.",
		func() float64 {
			if v := c.merged.Load(); v != nil {
				return float64(v.fresh)
			}
			return 0
		})
	reg.GaugeFunc("freq_cluster_have_nodes", "Nodes contributing to the serving view (fresh or stale).",
		func() float64 {
			if v := c.merged.Load(); v != nil {
				return float64(v.have)
			}
			return 0
		})
	reg.GaugeFunc("freq_cluster_dropped_nodes", "Nodes excluded from the serving view by the -max-stale bound.",
		func() float64 {
			if v := c.merged.Load(); v != nil {
				return float64(v.dropped)
			}
			return 0
		})
	reg.GaugeFunc("freq_cluster_missing_shards", "Shards with no usable contribution (partitioned mode).",
		func() float64 {
			if v := c.merged.Load(); v != nil {
				return float64(v.missing)
			}
			return 0
		})
	reg.CounterFunc("freq_node_restarts_total", "Node process restarts observed across pulls (epoch changes).",
		func() float64 {
			c.mu.Lock()
			defer c.mu.Unlock()
			var n int64
			for _, ns := range c.nodes {
				n += ns.restarts
			}
			return float64(n)
		})
	reg.GaugeFunc("freq_uptime_seconds", "Seconds since process start.",
		func() float64 { return time.Since(c.start).Seconds() })
}

// pullNode fetches one node's /summary and returns the decoded summary
// plus its wire metadata. It validates eagerly — decode errors and
// algorithm mismatches are this node's failure, recorded against it,
// rather than a later cluster-wide merge failure — and the decode
// happens exactly once per pull: the summary (not the blob) is what
// the coordinator retains and merges.
func (c *Coordinator) pullNode(ctx context.Context, ns *nodeState) (sum core.Summary, epoch uint64, err error) {
	defer c.pullH.ObserveSince(time.Now())
	ctx, cancel := context.WithTimeout(ctx, c.timeout)
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, ns.url+"/summary", nil)
	if err != nil {
		return nil, 0, err
	}
	// Tag the pull with the round's trace ID so one coordinator round is
	// correlatable across its own log line and every node's request log.
	if tid := obs.TraceFrom(ctx); tid != "" {
		req.Header.Set(obs.TraceHeader, tid)
	}
	resp, err := c.client.Do(req)
	if err != nil {
		return nil, 0, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		body, _ := io.ReadAll(io.LimitReader(resp.Body, 512))
		return nil, 0, fmt.Errorf("GET /summary: %s: %s", resp.Status, strings.TrimSpace(string(body)))
	}
	blob, err := io.ReadAll(io.LimitReader(resp.Body, maxSummaryBytes+1))
	if err != nil {
		return nil, 0, fmt.Errorf("reading summary body: %w", err)
	}
	if len(blob) > maxSummaryBytes {
		return nil, 0, fmt.Errorf("summary body exceeds %d bytes", maxSummaryBytes)
	}
	epoch, err = strconv.ParseUint(resp.Header.Get(serve.HeaderEpoch), 10, 64)
	if err != nil {
		return nil, 0, fmt.Errorf("bad %s header %q", serve.HeaderEpoch, resp.Header.Get(serve.HeaderEpoch))
	}

	// The headers describe, the blob decides: position and algorithm
	// come from the decoded summary.
	sum, err = c.merge(blob)
	if err != nil {
		return nil, 0, fmt.Errorf("undecodable summary: %w", err)
	}
	return sum, epoch, nil
}

// PullAll performs one pull round: every node concurrently, then one
// merged-view rebuild from the latest good blobs. It is what Run calls
// on each tick, exposed for deterministic tests and POST /refresh.
func (c *Coordinator) PullAll(ctx context.Context) {
	// One trace ID per pull round: forwarded on every node request (and
	// logged by the nodes), so a round's fan-out is one grep away. A
	// caller-supplied trace (POST /refresh) wins over a fresh mint.
	if obs.TraceFrom(ctx) == "" {
		ctx = obs.WithTrace(ctx, obs.NewTraceID())
	}
	tid := obs.TraceFrom(ctx)
	var wg sync.WaitGroup
	for _, ns := range c.nodes {
		wg.Add(1)
		go func(ns *nodeState) {
			defer wg.Done()
			if c.tenanted {
				c.pullTenantInto(ctx, ns)
				return
			}
			sum, epoch, err := c.pullNode(ctx, ns)

			c.mu.Lock()
			defer c.mu.Unlock()
			if err != nil {
				ns.failures++
				ns.lastErr = err.Error()
				c.counters.Add("pulls.failed", 1)
				c.obs.Log.LogAttrs(ctx, slog.LevelWarn, "pull failed",
					slog.String("trace", tid), slog.String("node", ns.url), slog.String("error", err.Error()))
				return
			}
			algo := sum.Name()
			if c.algo == "" {
				c.algo = algo // adopt the cluster's algorithm from the first pull
			}
			if algo != c.algo {
				ns.failures++
				ns.lastErr = fmt.Sprintf("algorithm mismatch: node serves %s, cluster is %s", algo, c.algo)
				c.counters.Add("pulls.mismatched", 1)
				return
			}
			if ns.epoch != 0 && epoch != ns.epoch {
				// The node restarted since the last good pull. Its summary
				// is cumulative again (durable nodes replay their WAL), so
				// the wholesale replacement below is exactly right; the
				// counter makes the restart visible to operators.
				ns.restarts++
				c.counters.Add("nodes.restarts", 1)
				c.obs.Log.LogAttrs(ctx, slog.LevelInfo, "node restarted",
					slog.String("trace", tid), slog.String("node", ns.url),
					slog.Uint64("old_epoch", ns.epoch), slog.Uint64("new_epoch", epoch))
			}
			ns.sum, ns.n, ns.epoch, ns.algo = sum, sum.N(), epoch, algo
			ns.lastPull = time.Now()
			ns.pulls++
			ns.lastErr = ""
			c.counters.Add("pulls.ok", 1)
		}(ns)
	}
	wg.Wait()
	c.rebuild()
}

// rebuild merges the latest good summaries into a fresh serving view.
// Nodes with nothing pulled yet contribute nothing; nodes whose last
// attempt failed contribute their stale summary. The stored summaries
// are never mutated — the merge starts from a clone of the first (one
// Snapshot, already decoded at pull time) and Merge only reads its
// operands — so each node's state survives for the next cycle. A merge
// failure (same algorithm label but incompatible parameters — e.g.
// nodes provisioned at different φ) keeps the previous view serving
// and surfaces the error in Stats.
func (c *Coordinator) rebuild() {
	c.rebuildMu.Lock()
	defer c.rebuildMu.Unlock()
	if c.ring != nil {
		c.rebuildPartitioned()
		return
	}
	if c.tenanted {
		c.rebuildTenants()
		return
	}
	c.mu.Lock()
	sums := make([]core.Summary, 0, len(c.nodes))
	fresh, have, dropped := 0, 0, 0
	for _, ns := range c.nodes {
		ns.dropped = false
		if ns.sum == nil {
			continue
		}
		if c.maxStale > 0 && time.Since(ns.lastPull) > c.maxStale {
			// Past the freshness SLO: partial-but-fresh beats complete-
			// but-stale, so this node's last good state sits out the
			// merge (and the merged N) until a pull succeeds again. The
			// flag is set here, at rebuild time, so the per-node rows
			// and the cluster counters in /stats describe the same
			// serving view.
			ns.dropped = true
			dropped++
			continue
		}
		sums = append(sums, ns.sum)
		have++
		if ns.lastErr == "" {
			fresh++
		}
	}
	c.mu.Unlock()

	if len(sums) == 0 {
		if dropped > 0 {
			// Every known contribution is over the bound: publish the
			// empty state rather than keep serving data the SLO forbids.
			// Any earlier merge error is superseded by this (successful,
			// if vacuous) rebuild.
			c.mu.Lock()
			c.mergeErr = ""
			c.mu.Unlock()
			c.merged.Store(&mergedView{builtAt: time.Now(), dropped: dropped})
			c.merges.Add(1)
			c.counters.Add("merges.ok", 1)
		}
		return
	}
	merged, err := mergeSummaries(sums)
	c.mu.Lock()
	defer c.mu.Unlock()
	if err != nil {
		c.mergeErr = err.Error()
		c.counters.Add("merges.failed", 1)
		return
	}
	c.mergeErr = ""
	c.merged.Store(&mergedView{view: merged, builtAt: time.Now(), fresh: fresh, have: have, dropped: dropped})
	c.merges.Add(1)
	c.counters.Add("merges.ok", 1)
}

// rebuildPartitioned publishes a PartitionedView: per shard, the
// contribution with the highest acknowledged position among replicas
// that have data and are inside the freshness SLO. Replicas of a shard
// saw the same substream, so exactly one is chosen (never merged or
// summed); the highest position is the most caught-up survivor, which
// under the router's failover guarantee holds every acknowledged item
// of the shard — a recovered-but-behind replica is pulled and tracked,
// but not chosen until it catches up. The stored summaries are replaced
// wholesale by pulls, never mutated, so the published view can hold
// references to them across cycles.
func (c *Coordinator) rebuildPartitioned() {
	c.mu.Lock()
	best := make([]*nodeState, c.ring.Shards())
	fresh, have, dropped, missing := 0, 0, 0, 0
	anyData := false
	for _, ns := range c.nodes {
		ns.dropped = false
		ns.picked = false
		if ns.sum == nil {
			continue
		}
		anyData = true
		if c.maxStale > 0 && time.Since(ns.lastPull) > c.maxStale {
			ns.dropped = true
			dropped++
			continue
		}
		if b := best[ns.shard]; b == nil || ns.n > b.n {
			best[ns.shard] = ns
		}
	}
	shards := make([]core.Summary, c.ring.Shards())
	var total int64
	for si, b := range best {
		if b == nil {
			missing++
			continue
		}
		b.picked = true
		shards[si] = b.sum
		total += b.n
		have++
		if b.lastErr == "" {
			fresh++
		}
	}
	c.mergeErr = ""
	c.mu.Unlock()

	if !anyData {
		return // before the first good pull: keep serving the empty stream
	}
	c.merged.Store(&mergedView{
		view:    &PartitionedView{ring: c.ring, shards: shards, n: total},
		builtAt: time.Now(),
		fresh:   fresh, have: have, dropped: dropped, missing: missing,
	})
	c.merges.Add(1)
	c.counters.Add("merges.ok", 1)
}

// mergeSummaries folds the per-node summaries into one independent
// summary, leaving the inputs untouched.
func mergeSummaries(sums []core.Summary) (core.Summary, error) {
	sn, ok := sums[0].(core.Snapshotter)
	if !ok {
		return nil, fmt.Errorf("cluster: %s cannot be cloned for merging", sums[0].Name())
	}
	merged := sn.Snapshot()
	if len(sums) == 1 {
		return merged, nil
	}
	m, ok := merged.(core.Merger)
	if !ok {
		return nil, fmt.Errorf("cluster: %s does not support merging", merged.Name())
	}
	for i, s := range sums[1:] {
		if err := m.Merge(s); err != nil {
			return nil, fmt.Errorf("cluster: merging node summary %d: %w", i+1, err)
		}
	}
	return merged, nil
}

// Run pulls immediately, then on every interval tick, until ctx is
// cancelled.
func (c *Coordinator) Run(ctx context.Context) {
	c.PullAll(ctx)
	t := time.NewTicker(c.interval)
	defer t.Stop()
	for {
		select {
		case <-ctx.Done():
			return
		case <-t.C:
			c.PullAll(ctx)
		}
	}
}

// emptyView serves before the first successful pull: a zero-length
// stream, exactly what a node that has ingested nothing reports.
type emptyView struct{}

func (emptyView) N() int64                     { return 0 }
func (emptyView) Estimate(core.Item) int64     { return 0 }
func (emptyView) Query(int64) []core.ItemCount { return nil }

// ServingView returns the current merged epoch as an immutable
// core.ReadView — the same pin-one-view-per-request contract as the
// node wrappers' ServingView. Before the first good pull, and when the
// freshness SLO has dropped every contribution, it serves the empty
// stream.
func (c *Coordinator) ServingView() core.ReadView {
	if v := c.merged.Load(); v != nil && v.view != nil {
		return v.view
	}
	return emptyView{}
}

// N implements core.ReadView over the merged state.
func (c *Coordinator) N() int64 { return c.ServingView().N() }

// Estimate implements core.ReadView over the merged state.
func (c *Coordinator) Estimate(x core.Item) int64 { return c.ServingView().Estimate(x) }

// Query implements core.ReadView over the merged state.
func (c *Coordinator) Query(threshold int64) []core.ItemCount {
	return c.ServingView().Query(threshold)
}

// NodeStats is one node's row in Stats.
type NodeStats struct {
	URL string
	// Shard is the shard ID this node replicates in partitioned mode
	// ("" in flat mode); Picked whether it is the replica chosen to
	// serve that shard in the current view.
	Shard    string
	Picked   bool
	Algo     string
	N        int64
	Epoch    uint64
	Pulls    int64
	Failures int64
	Restarts int64
	// HasData reports whether the node has contributed at least one
	// good blob; Stale whether what it contributes is older than its
	// most recent (failed) attempt; Dropped whether the freshness SLO
	// (-max-stale) excluded its contribution at the last rebuild — the
	// same rebuild the cluster-level Fresh/Have/Dropped counters and
	// the serving view describe.
	HasData bool
	Stale   bool
	Dropped bool
	// Age is the time since the last good pull (zero when none yet).
	Age     time.Duration
	LastErr string
}

// Stats is the coordinator's observability snapshot, the cluster
// section of freqmerge's /stats.
type Stats struct {
	Algo     string
	Epoch    uint64
	Nodes    []NodeStats
	MergedN  int64
	Merges   int64
	MergeAge time.Duration // age of the serving merged view
	MergeErr string
	Fresh    int           // nodes fresh in the serving view
	Have     int           // nodes contributing to the serving view
	Dropped  int           // nodes excluded from the serving view by -max-stale
	MaxStale time.Duration // the freshness SLO (0 = serve stale forever)
	Uptime   time.Duration
	// Partitioned mode: the shard count of the write tier's map, and
	// how many shards have no usable contribution in the serving view
	// (their key ranges answer zero).
	Partitioned bool
	Shards      int
	Missing     int
}

// Stats reports the per-node and merged state.
func (c *Coordinator) Stats() Stats {
	c.mu.Lock()
	st := Stats{
		Algo:        c.algo,
		Epoch:       c.epoch,
		MergeErr:    c.mergeErr,
		MaxStale:    c.maxStale,
		Uptime:      time.Since(c.start),
		Partitioned: c.ring != nil,
	}
	if c.ring != nil {
		st.Shards = c.ring.Shards()
	}
	for _, ns := range c.nodes {
		row := NodeStats{
			URL:      ns.url,
			Picked:   ns.picked,
			Algo:     ns.algo,
			N:        ns.n,
			Epoch:    ns.epoch,
			Pulls:    ns.pulls,
			Failures: ns.failures,
			Restarts: ns.restarts,
			HasData:  ns.sum != nil,
			Stale:    ns.sum != nil && ns.lastErr != "",
			Dropped:  ns.dropped,
			LastErr:  ns.lastErr,
		}
		if ns.shard >= 0 && ns.shard < len(c.shardIDs) {
			row.Shard = c.shardIDs[ns.shard]
		}
		if !ns.lastPull.IsZero() {
			row.Age = time.Since(ns.lastPull)
		}
		st.Nodes = append(st.Nodes, row)
	}
	c.mu.Unlock()

	st.Merges = c.merges.Load()
	if v := c.merged.Load(); v != nil {
		if v.view != nil {
			st.MergedN = v.view.N()
		}
		st.MergeAge = time.Since(v.builtAt)
		st.Fresh, st.Have, st.Dropped = v.fresh, v.have, v.dropped
		st.Missing = v.missing
	}
	return st
}

// Counters exposes the coordinator's traffic counter set (shared with
// the HTTP handler so /stats reports query traffic like a node does,
// and scrapeable as freq_*_total series on /v1/metrics).
func (c *Coordinator) Counters() *obs.Set { return c.counters }
