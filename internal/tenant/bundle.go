package tenant

import (
	"encoding/binary"
	"fmt"
	"sort"

	"streamfreq/internal/persist"
)

// Bundle wire format: every namespace's encoded summary in one frame,
// the unit freqmerge pulls from tenant-mode nodes so it can merge
// per-namespace instead of per-node.
//
//	magic "SFTB0001"
//	u32   tenant count
//	per tenant: u16 nsLen | ns | u32 blobLen | blob (SS01)
//
// Entries are sorted by namespace; all integers little-endian.
const bundleMagic = "SFTB0001"

// maxBundleTenants bounds decode-side allocation against a hostile
// count field, mirroring the checkpoint decoder's cap.
const maxBundleTenants = 1 << 24

// NamespaceBlob pairs a namespace with its encoded summary.
type NamespaceBlob struct {
	NS   string
	Blob []byte
}

// EncodeBundle captures every namespace under one lock hold. Resident
// tenants are encoded in place (MarshalBinary does not mutate);
// evicted ones contribute their stored blob, so the frame is exactly
// what a checkpoint of the same instant would hold.
func (t *Table) EncodeBundle() ([]byte, error) {
	t.mu.Lock()
	defer t.mu.Unlock()
	names := make([]string, 0, len(t.tenants))
	for ns := range t.tenants {
		names = append(names, ns)
	}
	sort.Strings(names)
	buf := make([]byte, 0, 64+32*len(names))
	buf = append(buf, bundleMagic...)
	buf = binary.LittleEndian.AppendUint32(buf, uint32(len(names)))
	for _, ns := range names {
		ts := t.tenants[ns]
		blob := ts.blob
		if ts.sum != nil {
			var err error
			if blob, err = ts.sum.MarshalBinary(); err != nil {
				return nil, fmt.Errorf("tenant: encoding %q: %w", ns, err)
			}
		}
		buf = binary.LittleEndian.AppendUint16(buf, uint16(len(ns)))
		buf = append(buf, ns...)
		buf = binary.LittleEndian.AppendUint32(buf, uint32(len(blob)))
		buf = append(buf, blob...)
	}
	return buf, nil
}

// DecodeBundle parses a frame produced by EncodeBundle. Blobs are
// returned still encoded; the caller decodes with the codec matching
// the node's algorithm.
func DecodeBundle(data []byte) ([]NamespaceBlob, error) {
	if len(data) < len(bundleMagic)+4 || string(data[:len(bundleMagic)]) != bundleMagic {
		return nil, fmt.Errorf("tenant: not a summary bundle")
	}
	off := len(bundleMagic)
	count := binary.LittleEndian.Uint32(data[off:])
	off += 4
	if count > maxBundleTenants {
		return nil, fmt.Errorf("tenant: bundle claims %d namespaces", count)
	}
	out := make([]NamespaceBlob, 0, count)
	for i := uint32(0); i < count; i++ {
		if off+2 > len(data) {
			return nil, fmt.Errorf("tenant: bundle truncated in entry %d", i)
		}
		nsLen := int(binary.LittleEndian.Uint16(data[off:]))
		off += 2
		if nsLen > persist.MaxNamespaceLen || off+nsLen+4 > len(data) {
			return nil, fmt.Errorf("tenant: bundle entry %d has bad namespace length %d", i, nsLen)
		}
		ns := string(data[off : off+nsLen])
		off += nsLen
		blobLen := int(binary.LittleEndian.Uint32(data[off:]))
		off += 4
		if blobLen < 0 || off+blobLen > len(data) {
			return nil, fmt.Errorf("tenant: bundle entry %d has bad blob length %d", i, blobLen)
		}
		out = append(out, NamespaceBlob{NS: ns, Blob: data[off : off+blobLen]})
		off += blobLen
	}
	if off != len(data) {
		return nil, fmt.Errorf("tenant: %d trailing bytes after bundle", len(data)-off)
	}
	return out, nil
}
