package tenant_test

import (
	"bytes"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"testing"

	"streamfreq/internal/core"
	"streamfreq/internal/counters"
	"streamfreq/internal/persist"
	"streamfreq/internal/tenant"
	"streamfreq/internal/zipf"
)

func testStream(t testing.TB, n int, seed uint64) []core.Item {
	t.Helper()
	g, err := zipf.NewGenerator(1<<12, 1.1, seed, true)
	if err != nil {
		t.Fatal(err)
	}
	return g.Stream(n)
}

func newTable(t testing.TB, opts tenant.Options) *tenant.Table {
	t.Helper()
	tb, err := tenant.NewTable(opts)
	if err != nil {
		t.Fatal(err)
	}
	return tb
}

// encodeNS pulls one namespace's canonical wire bytes out of a bundle.
func encodeNS(t testing.TB, tb *tenant.Table, ns string) []byte {
	t.Helper()
	bundle, err := tb.EncodeBundle()
	if err != nil {
		t.Fatal(err)
	}
	entries, err := tenant.DecodeBundle(bundle)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range entries {
		if e.NS == ns {
			return e.Blob
		}
	}
	t.Fatalf("namespace %q missing from bundle", ns)
	return nil
}

// TestTenantIsolation is the isolation wall: interleaving ingest across
// K namespaces — under an eviction cap small enough that tenants cycle
// through evict/reload constantly — must leave every namespace
// bit-identical to an independent Space-Saving summary fed only its own
// stream.
func TestTenantIsolation(t *testing.T) {
	const tenants = 8
	phi := map[string]float64{"t0": 0.5, "t3": 0.02} // mixed budgets
	tb := newTable(t, tenant.Options{DefaultPhi: 0.01, MaxResident: 2, Phi: phi})

	streams := make([][]core.Item, tenants)
	indep := make([]*counters.SpaceSavingHeap, tenants)
	for i := range streams {
		streams[i] = testStream(t, 6_000, uint64(0xD15C+i))
		p := 0.01
		if v, ok := phi[fmt.Sprintf("t%d", i)]; ok {
			p = v
		}
		indep[i] = counters.NewSpaceSavingHeap(int(1/p) + 1)
	}

	// Interleave in uneven slices so tenants constantly displace each
	// other from the 2-slot residency.
	sizes := []int{512, 3, 1024, 97, 301}
	offs := make([]int, tenants)
	for done := false; !done; {
		done = true
		for i := range streams {
			if offs[i] >= len(streams[i]) {
				continue
			}
			done = false
			n := sizes[(i+offs[i])%len(sizes)]
			if offs[i]+n > len(streams[i]) {
				n = len(streams[i]) - offs[i]
			}
			batch := streams[i][offs[i] : offs[i]+n]
			if _, _, err := tb.IngestBatch(fmt.Sprintf("t%d", i), batch); err != nil {
				t.Fatal(err)
			}
			indep[i].UpdateBatch(batch)
			offs[i] += n
		}
	}

	st := tb.TableStats()
	if st.Resident > 2 {
		t.Fatalf("residency cap violated: %d resident", st.Resident)
	}
	if st.Evictions == 0 || st.Reloads == 0 {
		t.Fatalf("wall needs evict/reload churn to mean anything: %+v", st)
	}
	for i := range streams {
		ns := fmt.Sprintf("t%d", i)
		want, err := indep[i].MarshalBinary()
		if err != nil {
			t.Fatal(err)
		}
		if got := encodeNS(t, tb, ns); !bytes.Equal(got, want) {
			t.Fatalf("namespace %q is not bit-identical to its independent summary", ns)
		}
		// Reads must agree too (and must not disturb correctness when
		// they trigger a reload).
		top, ok := tb.TenantQuery(ns, 1)
		if !ok {
			t.Fatalf("namespace %q vanished", ns)
		}
		wantTop := indep[i].Query(1)
		if len(top) != len(wantTop) {
			t.Fatalf("namespace %q query returned %d items, want %d", ns, len(top), len(wantTop))
		}
	}
}

// op is one logged ingest step, replayable against a shadow table.
type op struct {
	ns       string
	items    []core.Item
	weighted bool
	x        core.Item
	count    int64
}

func applyOp(t testing.TB, tb *tenant.Table, o op) int64 {
	t.Helper()
	if o.weighted {
		tb.Update(o.x, o.count)
		return o.count
	}
	if _, _, err := tb.IngestBatch(o.ns, o.items); err != nil {
		t.Fatal(err)
	}
	return int64(len(o.items))
}

// TestTenantRecoveryKillAtArbitraryOffset is the durability wall: a
// multi-tenant table logged through tenant-tagged WAL records, with a
// mid-stream SFCKPT02 checkpoint, killed by truncating the live
// segment at an arbitrary byte offset, must recover to a state
// bit-identical (per namespace, via the canonical encoding) to
// replaying exactly the surviving record prefix into a fresh table.
// The recovering table is built WITHOUT the original φ overrides to
// prove counter budgets ride in the log, not in config.
func TestTenantRecoveryKillAtArbitraryOffset(t *testing.T) {
	for _, cutBack := range []int64{0, 1, 7, 64, 1000} {
		t.Run(fmt.Sprintf("cut-%d", cutBack), func(t *testing.T) {
			dir := t.TempDir()
			popts := persist.Options{
				Dir:    dir,
				Algo:   "SSH",
				Fsync:  persist.FsyncAlways,
				Decode: func(b []byte) (core.Summary, error) { return counters.DecodeSpaceSavingHeap(b) },
			}
			tb := newTable(t, tenant.Options{
				DefaultPhi:  0.01,
				MaxResident: 2, // checkpoint and replay over mostly-evicted tenants
				Phi:         map[string]float64{"eu": 0.1},
			})
			st, err := persist.Open(popts)
			if err != nil {
				t.Fatal(err)
			}
			if _, err := st.Recover(tb); err != nil {
				t.Fatal(err)
			}
			tb.PersistTo(st)

			// Mixed traffic: three explicit namespaces, the default
			// namespace through the legacy batch path, and a weighted
			// scalar update.
			var ops []op
			nss := []string{"eu", "us", "ap", ""}
			streams := make(map[string][]core.Item)
			for i, ns := range nss {
				streams[ns] = testStream(t, 4_000, uint64(0xBEEF+i))
			}
			sizes := []int{512, 3, 1024, 97}
			offs := map[string]int{}
			for round := 0; ; round++ {
				progressed := false
				for i, ns := range nss {
					s := streams[ns]
					if offs[ns] >= len(s) {
						continue
					}
					progressed = true
					n := sizes[(i+round)%len(sizes)]
					if offs[ns]+n > len(s) {
						n = len(s) - offs[ns]
					}
					ops = append(ops, op{ns: ns, items: s[offs[ns] : offs[ns]+n]})
					offs[ns] += n
				}
				if !progressed {
					break
				}
				if round == 2 {
					ops = append(ops, op{weighted: true, x: 42, count: 7})
				}
			}
			for i, o := range ops {
				applyOp(t, tb, o)
				if i == len(ops)/2 {
					if _, err := st.Checkpoint(tb); err != nil {
						t.Fatalf("checkpoint: %v", err)
					}
				}
			}
			if err := st.Err(); err != nil {
				t.Fatal(err)
			}
			// Kill: no Close. Tear the live segment.
			segs, err := filepath.Glob(filepath.Join(dir, "wal-*.seg"))
			if err != nil || len(segs) == 0 {
				t.Fatalf("no segments (%v)", err)
			}
			sort.Strings(segs)
			last := segs[len(segs)-1]
			if cutBack > 0 {
				fi, err := os.Stat(last)
				if err != nil {
					t.Fatal(err)
				}
				if err := os.Truncate(last, fi.Size()-cutBack); err != nil {
					t.Fatal(err)
				}
			}

			rec := newTable(t, tenant.Options{DefaultPhi: 0.01, MaxResident: 2}) // no overrides
			st2, err := persist.Open(popts)
			if err != nil {
				t.Fatal(err)
			}
			stats, err := st2.Recover(rec)
			if err != nil {
				t.Fatalf("Recover: %v", err)
			}
			defer st2.Close()

			// Rebuild the surviving prefix in a fresh, never-persisted
			// table. Tears land on record boundaries, so RecoveredN must
			// align with an op boundary.
			shadow := newTable(t, tenant.Options{DefaultPhi: 0.01, MaxResident: 2, Phi: map[string]float64{"eu": 0.1}})
			var n int64
			for _, o := range ops {
				if n == stats.RecoveredN {
					break
				}
				n += applyOp(t, shadow, o)
			}
			if n != stats.RecoveredN {
				t.Fatalf("recovered n=%d does not align with any op boundary (reached %d)", stats.RecoveredN, n)
			}
			if cutBack > 0 && stats.RecoveredN >= tb.N() && cutBack < 1000 {
				// Small tears must cost at least the final record (the
				// 1000-byte cut can land inside the checkpointed region
				// only if the tail was short; RecoveredN still rules).
				t.Fatalf("tear lost nothing: recovered %d of %d", stats.RecoveredN, tb.N())
			}

			wantBundle, err := shadow.EncodeBundle()
			if err != nil {
				t.Fatal(err)
			}
			gotBundle, err := rec.EncodeBundle()
			if err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(gotBundle, wantBundle) {
				t.Fatal("recovered tenants are not bit-identical to the surviving prefix")
			}
			if rec.N() != shadow.N() {
				t.Fatalf("recovered table n=%d, shadow %d", rec.N(), shadow.N())
			}
			// Budgets rode the log: "eu" must have k=11 even though the
			// recovering table had no φ override for it.
			if info, ok := rec.TenantInfo("eu"); !ok || info.K != 11 {
				t.Fatalf("namespace eu recovered with k=%d (info=%+v), want 11 from the log", info.K, info)
			}
		})
	}
}

// TestLegacyDirectoryAdoption: a data directory written by the
// single-tenant stack (SFCKPT01 checkpoint + untagged WAL records)
// must recover into a multi-tenant table as its default namespace,
// bit-identically.
func TestLegacyDirectoryAdoption(t *testing.T) {
	dir := t.TempDir()
	popts := persist.Options{
		Dir:    dir,
		Algo:   "SSH",
		Fsync:  persist.FsyncAlways,
		Decode: func(b []byte) (core.Summary, error) { return counters.DecodeSpaceSavingHeap(b) },
	}
	orig := core.NewConcurrent(counters.NewSpaceSavingHeap(101))
	st, err := persist.Open(popts)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := st.Recover(orig); err != nil {
		t.Fatal(err)
	}
	orig.PersistTo(st)
	stream := testStream(t, 10_000, 0xFEED)
	half := len(stream) / 2
	orig.UpdateBatch(stream[:half])
	if _, err := st.Checkpoint(orig); err != nil {
		t.Fatal(err)
	}
	orig.UpdateBatch(stream[half:]) // tail replays through recUnit records
	if err := st.Err(); err != nil {
		t.Fatal(err)
	}
	// Kill without Close; adopt into a tenant table.
	tb := newTable(t, tenant.Options{DefaultPhi: 0.01})
	st2, err := persist.Open(popts)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := st2.Recover(tb); err != nil {
		t.Fatalf("adopting legacy directory: %v", err)
	}
	defer st2.Close()

	wantSnap := orig.SnapshotBarrier(nil)[0]
	want, err := core.EncodeSummary(wantSnap)
	if err != nil {
		t.Fatal(err)
	}
	if got := encodeNS(t, tb, ""); !bytes.Equal(got, want) {
		t.Fatal("adopted default namespace differs from the single-tenant original")
	}
	if tb.N() != orig.LiveN() {
		t.Fatalf("adopted n=%d, original %d", tb.N(), orig.LiveN())
	}
}

// TestManyTenantsBounded is the scale wall: a million lazily-created
// 64-counter tenants (100k under -short) must fit in bounded memory —
// residency capped by CLOCK eviction, evicted tenants costing only
// their compact blobs. The documented bound: ≤ 128 bytes/tenant of
// table-accounted memory (slab arenas + blobs) at 2 items/tenant.
func TestManyTenantsBounded(t *testing.T) {
	total := 1_000_000
	if testing.Short() {
		total = 100_000
	}
	const maxResident = 1024
	// φ = 1/63 → k = 64.
	tb := newTable(t, tenant.Options{DefaultPhi: 1.0 / 63, MaxResident: maxResident})
	items := []core.Item{7, 7}
	var ns [24]byte
	for i := 0; i < total; i++ {
		n := copy(ns[:], "t-")
		n += copy(ns[n:], fmt.Sprintf("%07d", i))
		if _, _, err := tb.IngestBatch(string(ns[:n]), items); err != nil {
			t.Fatal(err)
		}
	}
	st := tb.TableStats()
	if st.Tenants != total {
		t.Fatalf("created %d tenants, want %d", st.Tenants, total)
	}
	if info, ok := tb.TenantInfo("t-0000000"); !ok || info.K != 64 {
		t.Fatalf("tenant budget = %+v, want k=64", info)
	}
	if st.Resident > maxResident {
		t.Fatalf("%d resident tenants, cap %d", st.Resident, maxResident)
	}
	if st.Slab.LiveBlocks > maxResident {
		t.Fatalf("%d live slab blocks, cap %d", st.Slab.LiveBlocks, maxResident)
	}
	perTenant := float64(tb.Bytes()) / float64(total)
	if perTenant > 128 {
		t.Fatalf("%.1f bytes/tenant, documented bound is 128", perTenant)
	}
	if tb.N() != int64(2*total) {
		t.Fatalf("table n=%d, want %d", tb.N(), 2*total)
	}
}

// TestPerTenantPhi: overrides set the budget at instantiation; later
// SetPhi calls move only the query threshold.
func TestPerTenantPhi(t *testing.T) {
	tb := newTable(t, tenant.Options{DefaultPhi: 0.01, Phi: map[string]float64{"coarse": 0.5}})
	for _, ns := range []string{"coarse", "fine"} {
		if _, _, err := tb.IngestBatch(ns, []core.Item{1, 2, 3}); err != nil {
			t.Fatal(err)
		}
	}
	if info, _ := tb.TenantInfo("coarse"); info.K != 3 || info.Phi != 0.5 {
		t.Fatalf("coarse = %+v, want k=3 φ=0.5", info)
	}
	if info, _ := tb.TenantInfo("fine"); info.K != 101 || info.Phi != 0.01 {
		t.Fatalf("fine = %+v, want k=101 φ=0.01", info)
	}
	if err := tb.SetPhi("coarse", 0.25); err != nil {
		t.Fatal(err)
	}
	if info, _ := tb.TenantInfo("coarse"); info.K != 3 || info.Phi != 0.25 {
		t.Fatalf("after SetPhi coarse = %+v, want k=3 (unchanged) φ=0.25", info)
	}
	if err := tb.SetPhi("late", 0.5); err != nil {
		t.Fatal(err)
	}
	if _, _, err := tb.IngestBatch("late", []core.Item{1}); err != nil {
		t.Fatal(err)
	}
	if info, _ := tb.TenantInfo("late"); info.K != 3 {
		t.Fatalf("late = %+v, want k=3 from pre-instantiation override", info)
	}
	if err := tb.SetPhi("x", 1.5); err == nil {
		t.Fatal("φ=1.5 must be rejected")
	}
}

// TestBundleRoundTrip: the cluster-pull frame decodes back to exactly
// the table's namespaces, resident or not.
func TestBundleRoundTrip(t *testing.T) {
	tb := newTable(t, tenant.Options{DefaultPhi: 0.1, MaxResident: 1})
	want := map[string][]core.Item{
		"a": {1, 1, 2},
		"b": {3},
		"c": {4, 4, 4, 4},
	}
	for ns, items := range want {
		if _, _, err := tb.IngestBatch(ns, items); err != nil {
			t.Fatal(err)
		}
	}
	bundle, err := tb.EncodeBundle()
	if err != nil {
		t.Fatal(err)
	}
	entries, err := tenant.DecodeBundle(bundle)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != len(want) {
		t.Fatalf("bundle holds %d namespaces, want %d", len(entries), len(want))
	}
	for _, e := range entries {
		sum, err := counters.DecodeSpaceSavingHeap(e.Blob)
		if err != nil {
			t.Fatalf("namespace %q: %v", e.NS, err)
		}
		if sum.N() != int64(len(want[e.NS])) {
			t.Fatalf("namespace %q decoded n=%d, want %d", e.NS, sum.N(), len(want[e.NS]))
		}
	}
	if _, err := tenant.DecodeBundle(bundle[:len(bundle)-1]); err == nil {
		t.Fatal("truncated bundle must not decode")
	}
}
