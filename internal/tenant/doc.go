// Package tenant implements the multi-tenant summary table behind
// freqd: a namespace-keyed collection of Space-Saving summaries that
// share one slab allocator, one write-ahead log, and one checkpoint
// manifest.
//
// Namespaces are lazily instantiated on first ingest — creating a
// tenant is a map insert plus a slab block grab, so a million
// namespaces can come into existence without pre-provisioning. A CLOCK
// (second-chance) policy bounds how many tenants stay resident: when
// the resident count exceeds the configured cap, cold tenants are
// encoded to their compact wire blob and their slab block is returned
// to the arena. An evicted tenant costs only its blob bytes (tens of
// bytes for a sparse tenant, ~25·k bytes at worst) until it is touched
// again, at which point it is decoded back into slab storage. The
// encode→decode→encode round trip is byte-identical, so eviction never
// perturbs the durable state a checkpoint would capture.
//
// The table implements persist.TenantTarget: ingest appends
// tenant-tagged WAL records (kind recTenant, carrying the namespace
// and its counter budget) before applying, checkpoints capture every
// namespace in a SFCKPT02 manifest, and recovery hands blobs back
// still encoded — a restart with a million tenants decodes none of
// them until they are touched. It also implements the single-tenant
// serve.Target contract by routing Update/UpdateBatch/Estimate/Query
// to the default namespace "", so a tenant table is a drop-in target
// for the legacy routes and for pre-tenant data directories.
//
// Per-namespace φ thresholds: each tenant's counter budget k = ⌊1/φ⌋+1
// is fixed at instantiation from the namespace's φ override (or the
// table default). Overrides configured after a tenant exists affect
// its query threshold, not its budget — the budget is burned into the
// WAL records and checkpoint manifest so recovery rebuilds the same
// summary bit for bit.
package tenant
