package tenant_test

// BenchmarkTenantIngest prices tenancy: the same zipf batches pushed
// through one namespace (the no-fanout floor) and sprayed across 10k
// namespaces with a bounded resident set (the worst case: most batches
// land on an evicted tenant and pay a reload+evict round trip). The
// fanout cases report bytes/tenant — the acceptance bound the README
// documents — computed from the table's own accounting.

import (
	"fmt"
	"testing"

	"streamfreq/internal/core"
	"streamfreq/internal/tenant"
	"streamfreq/internal/zipf"
)

func benchItems(b *testing.B, n int) []core.Item {
	b.Helper()
	g, err := zipf.NewGenerator(1<<12, 1.1, 42, true)
	if err != nil {
		b.Fatal(err)
	}
	return g.Stream(n)
}

func BenchmarkTenantIngest(b *testing.B) {
	const batchLen = 256
	items := benchItems(b, batchLen)

	b.Run("single", func(b *testing.B) {
		tbl, err := tenant.NewTable(tenant.Options{DefaultPhi: 1.0 / 63})
		if err != nil {
			b.Fatal(err)
		}
		b.ReportAllocs()
		b.SetBytes(batchLen * 8)
		for i := 0; i < b.N; i++ {
			if _, _, err := tbl.IngestBatch("hot", items); err != nil {
				b.Fatal(err)
			}
		}
	})

	for _, resident := range []int{1 << 10, 1 << 13} {
		b.Run(fmt.Sprintf("fanout10k/resident%d", resident), func(b *testing.B) {
			const tenants = 10_000
			tbl, err := tenant.NewTable(tenant.Options{DefaultPhi: 1.0 / 63, MaxResident: resident})
			if err != nil {
				b.Fatal(err)
			}
			names := make([]string, tenants)
			for i := range names {
				names[i] = fmt.Sprintf("t%05d", i)
			}
			b.ReportAllocs()
			b.SetBytes(batchLen * 8)
			for i := 0; i < b.N; i++ {
				if _, _, err := tbl.IngestBatch(names[i%tenants], items); err != nil {
					b.Fatal(err)
				}
			}
			b.StopTimer()
			if created := tbl.TableStats().Created; created > 0 {
				b.ReportMetric(float64(tbl.Bytes())/float64(created), "bytes/tenant")
			}
		})
	}
}
