package tenant

import (
	"fmt"
	"sort"
	"sync"

	"streamfreq/internal/core"
	"streamfreq/internal/counters"
	"streamfreq/internal/persist"
)

// Persister is what the table needs from the durability layer: the
// single-tenant append surface plus tenant-tagged batches.
// persist.Store satisfies it.
type Persister interface {
	core.Persister
	AppendTenantBatch(ns string, k int, items []core.Item)
}

// Options configures a Table.
type Options struct {
	// DefaultPhi is the heavy-hitter threshold for namespaces without an
	// override; each tenant's counter budget is k = ⌊1/φ⌋+1. Required.
	DefaultPhi float64
	// MaxResident caps how many tenants keep decoded slab-backed
	// summaries at once; beyond it, CLOCK eviction encodes cold tenants
	// to their wire blobs. 0 means unlimited (no eviction).
	MaxResident int
	// Phi holds per-namespace φ overrides, applied when the namespace is
	// first instantiated. See SetPhi for the post-instantiation rules.
	Phi map[string]float64
}

// tenantState is one namespace's entry. Exactly one of sum/blob is set
// outside of transitions: sum while resident (slab-backed), blob while
// evicted. blob slices are immutable once created, so snapshots may
// share them without copying.
type tenantState struct {
	ns   string
	k    int
	phi  float64
	n    int64
	sum  *counters.SpaceSavingHeap
	blob []byte

	ref      bool // CLOCK second-chance bit
	clockIdx int  // position in Table.clock, -1 while evicted
}

// Table is the namespace-keyed summary store. One mutex guards the
// whole table: per-tenant summaries are tiny (k counters), so the
// critical sections are short, and a single lock makes the
// WAL-append-before-apply ordering and the snapshot barrier trivial.
// It implements persist.TenantTarget, and serve.Target via the default
// namespace "".
type Table struct {
	mu      sync.Mutex
	opts    Options
	tenants map[string]*tenantState
	clock   []*tenantState // resident tenants, CLOCK ring
	hand    int
	n       int64 // global stream position (== WAL accounting)
	slab    *counters.Slab
	persist Persister

	blobBytes int64
	created   int64
	evictions int64
	reloads   int64
}

// kForPhi mirrors the registry's canonical budget for threshold φ.
func kForPhi(phi float64) int {
	k := int(1/phi) + 1
	if k < 2 {
		k = 2
	}
	return k
}

// NewTable builds an empty table.
func NewTable(opts Options) (*Table, error) {
	if !(opts.DefaultPhi > 0 && opts.DefaultPhi < 1) {
		return nil, fmt.Errorf("tenant: DefaultPhi must be in (0,1), got %v", opts.DefaultPhi)
	}
	for ns, phi := range opts.Phi {
		if !(phi > 0 && phi < 1) {
			return nil, fmt.Errorf("tenant: φ override for %q must be in (0,1), got %v", ns, phi)
		}
		if len(ns) > persist.MaxNamespaceLen {
			return nil, fmt.Errorf("tenant: namespace %q exceeds %d bytes", ns, persist.MaxNamespaceLen)
		}
	}
	t := &Table{
		opts:    opts,
		tenants: make(map[string]*tenantState),
		slab:    counters.NewSlab(),
	}
	if opts.Phi != nil {
		// Copy: the caller's map must not mutate under us.
		t.opts.Phi = make(map[string]float64, len(opts.Phi))
		for ns, phi := range opts.Phi {
			t.opts.Phi[ns] = phi
		}
	}
	return t, nil
}

// phiFor returns the namespace's query threshold (override or default).
func (t *Table) phiFor(ns string) float64 {
	if phi, ok := t.opts.Phi[ns]; ok {
		return phi
	}
	return t.opts.DefaultPhi
}

// SetPhi installs (or clears, with phi == 0) a namespace's φ override.
// For a namespace not yet instantiated it also determines the counter
// budget; for a live one it changes only the query threshold — the
// budget was burned into the WAL at instantiation and cannot move
// without invalidating recovery.
func (t *Table) SetPhi(ns string, phi float64) error {
	if len(ns) > persist.MaxNamespaceLen {
		return fmt.Errorf("tenant: namespace exceeds %d bytes", persist.MaxNamespaceLen)
	}
	if phi != 0 && !(phi > 0 && phi < 1) {
		return fmt.Errorf("tenant: φ must be in (0,1), got %v", phi)
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	if phi == 0 {
		delete(t.opts.Phi, ns)
	} else {
		if t.opts.Phi == nil {
			t.opts.Phi = make(map[string]float64)
		}
		t.opts.Phi[ns] = phi
	}
	if ts := t.tenants[ns]; ts != nil {
		ts.phi = t.phiFor(ns)
	}
	return nil
}

// touchLocked returns the namespace's state, instantiating or reloading
// it as needed and marking it recently used. k > 0 forces the counter
// budget (WAL replay, which must rebuild the summary the log was
// written against); k == 0 derives it from the namespace's φ.
func (t *Table) touchLocked(ns string, k int) (*tenantState, error) {
	ts := t.tenants[ns]
	if ts == nil {
		phi := t.phiFor(ns)
		if k <= 0 {
			k = kForPhi(phi)
		}
		ts = &tenantState{ns: ns, k: k, phi: phi, clockIdx: -1}
		ts.sum = t.slab.NewSpaceSaving(k)
		t.tenants[ns] = ts
		t.addClockLocked(ts)
		t.created++
	} else if ts.sum == nil {
		sum, err := t.slab.DecodeSpaceSaving(ts.blob)
		if err != nil {
			return nil, fmt.Errorf("tenant: reloading %q: %w", ns, err)
		}
		t.blobBytes -= int64(len(ts.blob))
		ts.blob = nil
		ts.sum = sum
		ts.n = sum.N()
		t.addClockLocked(ts)
		t.reloads++
	}
	if k > 0 && ts.k != k {
		return nil, fmt.Errorf("tenant: %q instantiated with budget k=%d but the log says k=%d", ns, ts.k, k)
	}
	ts.ref = true
	return ts, nil
}

func (t *Table) addClockLocked(ts *tenantState) {
	ts.clockIdx = len(t.clock)
	t.clock = append(t.clock, ts)
}

func (t *Table) removeClockLocked(ts *tenantState) {
	i, last := ts.clockIdx, len(t.clock)-1
	t.clock[i] = t.clock[last]
	t.clock[i].clockIdx = i
	t.clock[last] = nil
	t.clock = t.clock[:last]
	ts.clockIdx = -1
}

// evictLocked encodes ts to its wire blob and returns its slab block.
// SS01 round-trips bit-identically, so the durable state a checkpoint
// would capture is unchanged by the eviction.
func (t *Table) evictLocked(ts *tenantState) {
	blob, err := ts.sum.MarshalBinary()
	if err != nil {
		// SSH always encodes; a failure here is memory corruption.
		panic(fmt.Sprintf("tenant: encoding %q for eviction: %v", ts.ns, err))
	}
	ts.sum.Release()
	ts.sum = nil
	ts.blob = blob
	t.blobBytes += int64(len(blob))
	t.removeClockLocked(ts)
	t.evictions++
}

// maybeEvictLocked enforces the residency cap with a CLOCK sweep,
// never evicting keep (the tenant the current operation holds).
func (t *Table) maybeEvictLocked(keep *tenantState) {
	max := t.opts.MaxResident
	if max <= 0 {
		return
	}
	for len(t.clock) > max {
		// Two sweeps suffice: the first clears every second-chance bit,
		// the second finds a victim. +1 absorbs the keep skip.
		evicted := false
		for pass := 0; pass < 2*len(t.clock)+1; pass++ {
			if t.hand >= len(t.clock) {
				t.hand = 0
			}
			ts := t.clock[t.hand]
			if ts == keep {
				t.hand++
				continue
			}
			if ts.ref {
				ts.ref = false
				t.hand++
				continue
			}
			t.evictLocked(ts)
			evicted = true
			break
		}
		if !evicted {
			return // only keep is resident; nothing to shed
		}
	}
}

// IngestBatch applies one unit-count batch to namespace ns, creating it
// on first touch. The batch is offered to the write-ahead log before it
// is applied, under the table lock, so log order equals apply order.
// It returns the tenant's and the table's stream positions.
func (t *Table) IngestBatch(ns string, items []core.Item) (tenantN, totalN int64, err error) {
	if len(ns) > persist.MaxNamespaceLen {
		return 0, 0, fmt.Errorf("tenant: namespace exceeds %d bytes", persist.MaxNamespaceLen)
	}
	if len(items) == 0 {
		t.mu.Lock()
		defer t.mu.Unlock()
		var n int64
		if ts := t.tenants[ns]; ts != nil {
			n = ts.n
		}
		return n, t.n, nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	ts, err := t.touchLocked(ns, 0)
	if err != nil {
		return 0, 0, err
	}
	if t.persist != nil {
		t.persist.AppendTenantBatch(ns, ts.k, items)
	}
	ts.sum.UpdateBatch(items)
	ts.n += int64(len(items))
	t.n += int64(len(items))
	t.maybeEvictLocked(ts)
	return ts.n, t.n, nil
}

// --- serve.Target / core.Summary via the default namespace ---

// Name returns the underlying algorithm code.
func (t *Table) Name() string { return "SSH" }

// Update applies a weighted update to the default namespace. Counts
// must be positive (Space-Saving is insert-only).
func (t *Table) Update(x core.Item, count int64) {
	t.mu.Lock()
	defer t.mu.Unlock()
	ts, err := t.touchLocked("", 0)
	if err != nil {
		panic(err) // "" always instantiates; only a reload can fail
	}
	if t.persist != nil {
		t.persist.AppendUpdate(x, count)
	}
	ts.sum.Update(x, count)
	ts.n += count
	t.n += count
	t.maybeEvictLocked(ts)
}

// UpdateBatch applies a unit-count batch to the default namespace.
func (t *Table) UpdateBatch(items []core.Item) {
	if _, _, err := t.IngestBatch("", items); err != nil {
		panic(err)
	}
}

// Estimate answers for the default namespace.
func (t *Table) Estimate(x core.Item) int64 {
	est, _, _ := t.TenantEstimate("", x)
	return est
}

// Query answers for the default namespace.
func (t *Table) Query(threshold int64) []core.ItemCount {
	out, _ := t.TenantQuery("", threshold)
	return out
}

// N returns the table-wide stream position (the sum of every tenant's,
// equal to the write-ahead log's accounting).
func (t *Table) N() int64 {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.n
}

// Bytes reports the table's footprint: slab arenas plus evicted blobs.
func (t *Table) Bytes() int {
	t.mu.Lock()
	defer t.mu.Unlock()
	return int(t.slab.Stats().ChunkBytes + t.blobBytes)
}

// Snapshot returns an independent clone of the default namespace (an
// empty summary if it was never touched), so the table slots into
// snapshot-based serving and cluster pulls like any single summary.
func (t *Table) Snapshot() core.Summary {
	t.mu.Lock()
	defer t.mu.Unlock()
	ts := t.tenants[""]
	if ts == nil {
		return counters.NewSpaceSavingHeap(kForPhi(t.phiFor("")))
	}
	if ts.sum == nil {
		sum, err := counters.DecodeSpaceSavingHeap(ts.blob)
		if err != nil {
			panic(fmt.Sprintf("tenant: decoding evicted default namespace: %v", err))
		}
		return sum
	}
	return ts.sum.Clone()
}

// --- tenant-scoped reads (all touch the tenant: an evicted namespace
// is decoded back into slab residency before answering) ---

// TenantEstimate returns the namespace's estimate and guaranteed lower
// bound for x; ok is false if the namespace was never created.
func (t *Table) TenantEstimate(ns string, x core.Item) (est, lower int64, ok bool) {
	t.mu.Lock()
	defer t.mu.Unlock()
	ts := t.tenants[ns]
	if ts == nil {
		return 0, 0, false
	}
	if ts, _ = t.touchLocked(ns, 0); ts == nil || ts.sum == nil {
		return 0, 0, false
	}
	defer t.maybeEvictLocked(ts)
	return ts.sum.Estimate(x), ts.sum.GuaranteedCount(x), true
}

// TenantQuery returns the namespace's items with estimates at least
// threshold; ok is false if the namespace was never created.
func (t *Table) TenantQuery(ns string, threshold int64) (out []core.ItemCount, ok bool) {
	t.mu.Lock()
	defer t.mu.Unlock()
	ts := t.tenants[ns]
	if ts == nil {
		return nil, false
	}
	if ts, _ = t.touchLocked(ns, 0); ts == nil || ts.sum == nil {
		return nil, false
	}
	defer t.maybeEvictLocked(ts)
	return ts.sum.Query(threshold), true
}

// Info describes one namespace.
type Info struct {
	NS       string  `json:"ns"`
	K        int     `json:"k"`
	Phi      float64 `json:"phi"`
	N        int64   `json:"n"`
	Resident bool    `json:"resident"`
}

// TenantInfo returns one namespace's metadata without touching it
// (stats must not perturb eviction order).
func (t *Table) TenantInfo(ns string) (Info, bool) {
	t.mu.Lock()
	defer t.mu.Unlock()
	ts := t.tenants[ns]
	if ts == nil {
		return Info{}, false
	}
	return Info{NS: ts.ns, K: ts.k, Phi: ts.phi, N: ts.n, Resident: ts.sum != nil}, true
}

// Namespaces lists up to limit namespaces in lexicographic order
// (limit <= 0 means all).
func (t *Table) Namespaces(limit int) []Info {
	t.mu.Lock()
	defer t.mu.Unlock()
	out := make([]Info, 0, len(t.tenants))
	for _, ts := range t.tenants {
		out = append(out, Info{NS: ts.ns, K: ts.k, Phi: ts.phi, N: ts.n, Resident: ts.sum != nil})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].NS < out[j].NS })
	if limit > 0 && len(out) > limit {
		out = out[:limit]
	}
	return out
}

// Stats is the table-level health surface.
type Stats struct {
	Tenants   int                `json:"tenants"`
	Resident  int                `json:"resident"`
	N         int64              `json:"n"`
	BlobBytes int64              `json:"blob_bytes"`
	Created   int64              `json:"created"`
	Evictions int64              `json:"evictions"`
	Reloads   int64              `json:"reloads"`
	Slab      counters.SlabStats `json:"slab"`
}

// TableStats returns a consistent snapshot of the table's counters.
func (t *Table) TableStats() Stats {
	t.mu.Lock()
	defer t.mu.Unlock()
	return Stats{
		Tenants:   len(t.tenants),
		Resident:  len(t.clock),
		N:         t.n,
		BlobBytes: t.blobBytes,
		Created:   t.created,
		Evictions: t.evictions,
		Reloads:   t.reloads,
		Slab:      t.slab.Stats(),
	}
}

// --- persist.TenantTarget ---

// LiveN reports the live stream position for recovery verification.
func (t *Table) LiveN() int64 { return t.N() }

// PersistTo routes every subsequent update through p before it is
// applied, under the table lock. p must also implement
// AppendTenantBatch (persist.Store does); wiring a log that cannot
// carry tenant records is a startup bug, caught here.
func (t *Table) PersistTo(p core.Persister) {
	tp, ok := p.(Persister)
	if !ok {
		panic("tenant: persister lacks AppendTenantBatch")
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	t.persist = tp
}

// UpdateTenantBatch applies one replayed tenant-tagged batch. It runs
// only during recovery (before PersistTo), so nothing is re-appended.
// A budget mismatch between the log and the table panics; the replay
// loop converts record-apply panics into recovery errors.
func (t *Table) UpdateTenantBatch(ns string, k int, items []core.Item) {
	t.mu.Lock()
	defer t.mu.Unlock()
	ts, err := t.touchLocked(ns, k)
	if err != nil {
		panic(err)
	}
	ts.sum.UpdateBatch(items)
	ts.n += int64(len(items))
	t.n += int64(len(items))
	t.maybeEvictLocked(ts)
}

// SnapshotBarrier is the single-tenant barrier; persist prefers
// TenantSnapshotBarrier for this table, so this exists only to satisfy
// persist.Target and covers the default namespace alone.
func (t *Table) SnapshotBarrier(cut func(n int64)) []core.Summary {
	t.mu.Lock()
	defer t.mu.Unlock()
	if cut != nil {
		cut(t.n)
	}
	ts := t.tenants[""]
	if ts == nil || ts.sum == nil {
		return []core.Summary{counters.NewSpaceSavingHeap(kForPhi(t.phiFor("")))}
	}
	return []core.Summary{ts.sum.Clone()}
}

// RestoreState injects a recovered single summary into the default
// namespace; the tenant-aware recovery path uses RestoreTenants
// instead, so this too exists for persist.Target completeness.
func (t *Table) RestoreState(shards []core.Summary) error {
	if len(shards) != 1 {
		return fmt.Errorf("tenant: table restore needs 1 shard, got %d", len(shards))
	}
	sum, ok := shards[0].(*counters.SpaceSavingHeap)
	if !ok {
		return fmt.Errorf("tenant: table restore needs a Space-Saving summary, got %s", shards[0].Name())
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	if len(t.tenants) != 0 || t.n != 0 {
		return fmt.Errorf("tenant: restore into a non-empty table")
	}
	ts := &tenantState{ns: "", k: sum.K(), phi: t.phiFor(""), n: sum.N(), sum: sum, clockIdx: -1}
	t.tenants[""] = ts
	t.addClockLocked(ts)
	t.n = ts.n
	return nil
}

// TenantSnapshotBarrier clones every namespace — resident ones as deep
// summary copies, evicted ones as their (immutable) blobs — and cuts
// the log at the table's stream position, all under one lock hold, so
// "state as of N" and "records after N" partition the stream exactly.
// Entries are sorted by namespace for deterministic manifests.
func (t *Table) TenantSnapshotBarrier(cut func(n int64)) []persist.TenantState {
	t.mu.Lock()
	defer t.mu.Unlock()
	if cut != nil {
		cut(t.n)
	}
	out := make([]persist.TenantState, 0, len(t.tenants))
	for _, ts := range t.tenants {
		st := persist.TenantState{NS: ts.ns, K: ts.k, N: ts.n}
		if ts.sum != nil {
			st.Summary = ts.sum.Clone()
		} else {
			st.Blob = ts.blob
		}
		out = append(out, st)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].NS < out[j].NS })
	return out
}

// RestoreTenants installs recovered tenant state into an empty table.
// Blobs stay encoded (and off the slab) until each tenant is next
// touched; a restart with a million namespaces decodes none of them up
// front. A K == 0 entry is a pre-tenant checkpoint adopted into the
// named namespace; its blob is decoded now to learn the budget.
func (t *Table) RestoreTenants(states []persist.TenantState) error {
	t.mu.Lock()
	defer t.mu.Unlock()
	if len(t.tenants) != 0 || t.n != 0 {
		return fmt.Errorf("tenant: restore into a non-empty table")
	}
	for _, st := range states {
		if _, dup := t.tenants[st.NS]; dup {
			return fmt.Errorf("tenant: duplicate namespace %q in checkpoint", st.NS)
		}
		ts := &tenantState{ns: st.NS, phi: t.phiFor(st.NS), clockIdx: -1}
		switch {
		case st.K == 0:
			sum, err := t.slab.DecodeSpaceSaving(st.Blob)
			if err != nil {
				return fmt.Errorf("tenant: decoding legacy checkpoint for %q: %w", st.NS, err)
			}
			ts.k, ts.n, ts.sum = sum.K(), sum.N(), sum
			t.addClockLocked(ts)
		case st.Blob != nil:
			ts.k, ts.n, ts.blob = st.K, st.N, st.Blob
			t.blobBytes += int64(len(st.Blob))
		default:
			return fmt.Errorf("tenant: restore entry for %q carries no state", st.NS)
		}
		t.tenants[st.NS] = ts
		t.n += ts.n
	}
	t.maybeEvictLocked(nil)
	return nil
}
