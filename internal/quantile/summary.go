package quantile

import (
	"math"

	"streamfreq/internal/core"
)

// This file lifts GK to the full summary contract the registry machinery
// expects — core.Summary, core.BatchUpdater, core.Snapshotter, and
// core.Merger — so a GK summary serves, checkpoints, recovers, and merges
// through exactly the same code paths as the frequent-items algorithms.
//
// GK is value-ordered, not identity-hashed: an Item is interpreted as the
// numeric value float64(x). Quantile and range queries are the native
// workload; point estimates and threshold queries are derived from rank
// differences and carry the rank error ±εn on each side. Item values
// above 2^53 lose low-order bits in the float64 conversion, so GK is
// intended for ordered universes (timestamps, ports, sizes, prices) that
// fit comfortably below that.
//
// GK stays out of the factories roster for the same reason "SSW" does
// (see registry.go): it answers a different question than FrequentItems(φ)
// and is provisioned by ε, not φ — but the GK01 wire format makes it a
// first-class wire citizen.

// Name implements core.Summary; "GK" is the usual shorthand for the
// Greenwald–Khanna summary.
func (g *GK) Name() string { return "GK" }

// Update implements core.Summary: count arrivals of the value float64(x).
// GK is insert-only; a negative count panics like the counter summaries.
func (g *GK) Update(x core.Item, count int64) {
	if count < 0 {
		panic("quantile: GK is insert-only; negative count")
	}
	v := float64(x)
	for i := int64(0); i < count; i++ {
		g.Insert(v)
	}
}

// UpdateBatch implements core.BatchUpdater. GK's insert cost is dominated
// by the ordered-tuple search, which gains nothing from batching, so the
// batch path is the scalar loop — bit-identical to per-item Update by
// construction, which is what WAL replay (recovery) rides.
func (g *GK) UpdateBatch(items []core.Item) {
	for _, x := range items {
		g.Insert(float64(x))
	}
}

// Estimate implements core.Summary: the estimated number of arrivals of
// exactly the value float64(x), derived from the rank difference across
// the value. The error is within ±2εn (one rank bound on each side).
func (g *GK) Estimate(x core.Item) int64 {
	v := float64(x)
	hiMid := rankMidpoint(g.Rank(v))
	loMid := rankMidpoint(g.Rank(v - 0.5))
	est := hiMid - loMid
	if est < 0 {
		est = 0
	}
	return est
}

// rankMidpoint collapses a [lo, hi] rank bound to its midpoint.
func rankMidpoint(lo, hi int64) int64 { return (lo + hi) / 2 }

// Query implements core.Summary: every stored value whose estimated
// arrival count reaches threshold, in descending count order. Only
// integral non-negative values are representable as Items; GK never
// stores others when fed through Update/UpdateBatch.
func (g *GK) Query(threshold int64) []core.ItemCount {
	if threshold <= 0 {
		threshold = 1
	}
	var out []core.ItemCount
	var rminBefore, deltaBefore int64
	i := 0
	for i < len(g.tuples) {
		v := g.tuples[i].v
		rmin := rminBefore
		var delta int64
		j := i
		for ; j < len(g.tuples) && g.tuples[j].v == v; j++ {
			rmin += g.tuples[j].g
			delta = g.tuples[j].delta
		}
		// Midpoint-rank difference across the value run: identical to
		// what Estimate reports for the same value.
		est := rmin - rminBefore + (delta-deltaBefore)/2
		if est >= threshold && v >= 0 && v <= maxExactItem && v == math.Trunc(v) {
			out = append(out, core.ItemCount{Item: core.Item(uint64(v)), Count: est})
		}
		rminBefore, deltaBefore = rmin, delta
		i = j
	}
	core.SortByCountDesc(out)
	return out
}

// maxExactItem is the largest float64 that round-trips to uint64 without
// hitting the lost-precision range.
const maxExactItem = float64(1 << 53)

// Clone returns an independent deep copy.
func (g *GK) Clone() *GK {
	ng := &GK{
		epsilon:       g.epsilon,
		n:             g.n,
		sinceCompress: g.sinceCompress,
		tuples:        make([]tuple, len(g.tuples)),
	}
	copy(ng.tuples, g.tuples)
	return ng
}

// Snapshot implements core.Snapshotter.
func (g *GK) Snapshot() core.Summary { return g.Clone() }

// Merge implements core.Merger with the Greenwald–Khanna (2004)
// sensor-network merge: the tuple lists interleave in value order, and
// each tuple's Δ absorbs the local rank uncertainty of the *other*
// summary at its position (the g+Δ−1 spread of the other list's next
// tuple). The merged summary answers rank queries within ε·n1 + ε·n2 =
// ε·(n1+n2), so equal-ε summaries merge without losing the ε guarantee;
// unequal ε is rejected as incompatible, matching the registry's
// same-parameters merge contract.
func (g *GK) Merge(other core.Summary) error {
	o, ok := other.(*GK)
	if !ok {
		return core.Incompatible("GK: cannot merge %T", other)
	}
	if o.epsilon != g.epsilon {
		return core.Incompatible("GK: epsilon mismatch %g vs %g", g.epsilon, o.epsilon)
	}
	if o.n == 0 {
		return nil
	}
	if g.n == 0 {
		g.tuples = append(g.tuples[:0], o.tuples...)
		g.n = o.n
		g.sinceCompress = o.sinceCompress
		return nil
	}
	merged := make([]tuple, 0, len(g.tuples)+len(o.tuples))
	i, j := 0, 0
	for i < len(g.tuples) || j < len(o.tuples) {
		var t tuple
		takeOurs := j >= len(o.tuples) ||
			(i < len(g.tuples) && g.tuples[i].v <= o.tuples[j].v)
		if takeOurs {
			t = g.tuples[i]
			i++
			if j < len(o.tuples) {
				nxt := o.tuples[j]
				t.delta += nxt.g + nxt.delta - 1
			}
		} else {
			t = o.tuples[j]
			j++
			if i < len(g.tuples) {
				nxt := g.tuples[i]
				t.delta += nxt.g + nxt.delta - 1
			}
		}
		merged = append(merged, t)
	}
	g.tuples = merged
	g.n += o.n
	g.sinceCompress = 0
	g.compress()
	return nil
}

// RangeEstimate returns the estimated number of arrivals with values in
// [lo, hi] (inclusive), from the rank difference across the range bounds.
// The signature mirrors Hierarchical.RangeEstimate so the serving layer
// dispatches on one capability interface; the error is within ±2εn.
func (g *GK) RangeEstimate(lo, hi uint64) (int64, error) {
	if lo > hi {
		return 0, errEmptyRange(lo, hi)
	}
	hiMid := rankMidpoint(g.Rank(float64(hi)))
	loMid := rankMidpoint(g.Rank(float64(lo) - 0.5))
	est := hiMid - loMid
	if est < 0 {
		est = 0
	}
	return est, nil
}

// QuantileQuery returns the approximate q-quantile of the inserted item
// values as an Item, mirroring Hierarchical.QuantileQuery. The returned
// value's rank is within ±εn of q·n.
func (g *GK) QuantileQuery(q float64) (uint64, error) {
	v, err := g.Quantile(q)
	if err != nil {
		return 0, err
	}
	if v < 0 {
		return 0, nil
	}
	if v >= math.MaxUint64 {
		return math.MaxUint64, nil
	}
	return uint64(math.Round(v)), nil
}
