// Package quantile implements the Greenwald–Khanna (GK) ε-approximate
// quantile summary. The VLDB 2008 study groups frequent-items algorithms
// with quantile summaries as the two workhorse stream-summary classes
// (its authors' companion work covers both); GK is included here so the
// library covers the quantile side of that toolbox, and because the
// paper's counter-based algorithms are often deployed alongside it.
//
// A GK summary over n observed values answers any rank query within ±εn
// using O((1/ε)·log(εn)) stored tuples.
package quantile

import (
	"fmt"
	"math"
	"sort"
)

// tuple is one GK triple: the value v, g = rank(v) − rank(previous v)
// (the gap), and Δ = the maximum possible error of v's rank.
type tuple struct {
	v     float64
	g     int64
	delta int64
}

// GK is a Greenwald–Khanna quantile summary. The zero value is not
// usable; construct with New.
type GK struct {
	epsilon float64
	tuples  []tuple // sorted by v
	n       int64
	// compressEvery batches compression: GK compresses after every
	// ⌊1/(2ε)⌋ inserts, which preserves the space bound.
	sinceCompress int
}

// New returns a GK summary with rank error εn.
func New(epsilon float64) *GK {
	if epsilon <= 0 || epsilon >= 1 {
		panic("quantile: GK requires 0 < epsilon < 1")
	}
	return &GK{epsilon: epsilon}
}

// Epsilon returns the configured error parameter.
func (g *GK) Epsilon() float64 { return g.epsilon }

// N returns the number of inserted values.
func (g *GK) N() int64 { return g.n }

// Size returns the number of stored tuples.
func (g *GK) Size() int { return len(g.tuples) }

// Bytes returns the approximate memory footprint.
func (g *GK) Bytes() int { return 24 * len(g.tuples) }

// Insert adds one value to the summary.
func (g *GK) Insert(v float64) {
	// Find insertion position: first tuple with value > v.
	pos := sort.Search(len(g.tuples), func(i int) bool { return g.tuples[i].v > v })

	var delta int64
	switch {
	case pos == 0 || pos == len(g.tuples):
		// New minimum or maximum: its rank is known exactly.
		delta = 0
	default:
		delta = int64(2*g.epsilon*float64(g.n)) - 1
		if delta < 0 {
			delta = 0
		}
	}
	g.tuples = append(g.tuples, tuple{})
	copy(g.tuples[pos+1:], g.tuples[pos:])
	g.tuples[pos] = tuple{v: v, g: 1, delta: delta}
	g.n++

	g.sinceCompress++
	if g.sinceCompress >= int(1/(2*g.epsilon))+1 {
		g.compress()
		g.sinceCompress = 0
	}
}

// compress merges adjacent tuples whose combined uncertainty stays within
// the 2εn band.
func (g *GK) compress() {
	if len(g.tuples) < 3 {
		return
	}
	limit := int64(2 * g.epsilon * float64(g.n))
	out := g.tuples[:0]
	out = append(out, g.tuples[0])
	for i := 1; i < len(g.tuples)-1; i++ {
		t := g.tuples[i]
		last := &out[len(out)-1]
		_ = last
		next := g.tuples[i+1]
		if t.g+next.g+next.delta <= limit {
			// Merge t into its successor: the successor absorbs t's gap.
			g.tuples[i+1].g += t.g
			continue
		}
		out = append(out, t)
	}
	out = append(out, g.tuples[len(g.tuples)-1])
	g.tuples = out
}

// Quantile returns a value whose rank is within εn of q·n, for
// q ∈ [0, 1]. It returns an error if the summary is empty.
func (g *GK) Quantile(q float64) (float64, error) {
	if len(g.tuples) == 0 {
		return 0, fmt.Errorf("quantile: empty summary")
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	target := int64(math.Ceil(q * float64(g.n)))
	slack := int64(g.epsilon * float64(g.n))
	// The extremes are tracked exactly (Δ = 0 at insertion): answer them
	// from the end tuples directly rather than the first in-band tuple.
	if target <= 1 {
		return g.tuples[0].v, nil
	}
	if target >= g.n {
		return g.tuples[len(g.tuples)-1].v, nil
	}

	var rmin int64
	for i, t := range g.tuples {
		rmin += t.g
		rmax := rmin + t.delta
		if target-slack <= rmin && rmax <= target+slack {
			return t.v, nil
		}
		// Last tuple always matches the maximum.
		if i == len(g.tuples)-1 {
			return t.v, nil
		}
	}
	return g.tuples[len(g.tuples)-1].v, nil
}

// Rank returns bounds [lo, hi] on the rank of v among the inserted
// values; the true rank lies within them.
func (g *GK) Rank(v float64) (lo, hi int64) {
	var rmin int64
	for _, t := range g.tuples {
		if t.v > v {
			break
		}
		rmin += t.g
		hi = rmin + t.delta
	}
	lo = rmin
	return lo, hi
}

// validate checks the GK invariant g + Δ ≤ 2εn + 1 for every tuple and
// value-sortedness; used by tests.
func (g *GK) validate() error {
	limit := int64(2*g.epsilon*float64(g.n)) + 1
	var total int64
	for i, t := range g.tuples {
		if i > 0 && g.tuples[i-1].v > t.v {
			return fmt.Errorf("tuples out of order at %d", i)
		}
		if t.g+t.delta > limit {
			return fmt.Errorf("tuple %d violates invariant: g+Δ = %d > %d", i, t.g+t.delta, limit)
		}
		total += t.g
	}
	if total != g.n {
		return fmt.Errorf("gap sum %d != n %d", total, g.n)
	}
	return nil
}
