package quantile

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"math"
)

// GK01 wire format, following the sketch-format conventions
// (little-endian, 4-byte magic, fixed-width header, bounds-checked
// payload before allocation):
//
//	[4]byte magic "GK01"
//	u64 float64 bits of epsilon
//	i64 n
//	u64 sinceCompress
//	u64 tuple count
//	per tuple: u64 float64 bits of v, i64 g, i64 delta
//
// sinceCompress is state, not presentation: the compress schedule depends
// on it, so it must survive a decode for checkpoint-then-replay to stay
// bit-identical to uninterrupted ingest (the recovery wall's contract).

const magicGK = "GK01"

// maxGKTuples bounds decoded summaries to catch corrupt headers before a
// huge allocation: 2^26 tuples is 1.5 GiB.
const maxGKTuples = 1 << 26

func errEmptyRange(lo, hi uint64) error {
	return fmt.Errorf("quantile: empty range [%d, %d]", lo, hi)
}

// MarshalBinary implements encoding.BinaryMarshaler.
func (g *GK) MarshalBinary() ([]byte, error) {
	var buf bytes.Buffer
	buf.Grow(4 + 8*4 + 24*len(g.tuples))
	buf.WriteString(magicGK)
	var b [8]byte
	put := func(v uint64) {
		binary.LittleEndian.PutUint64(b[:], v)
		buf.Write(b[:])
	}
	put(math.Float64bits(g.epsilon))
	put(uint64(g.n))
	put(uint64(g.sinceCompress))
	put(uint64(len(g.tuples)))
	for _, t := range g.tuples {
		put(math.Float64bits(t.v))
		put(uint64(t.g))
		put(uint64(t.delta))
	}
	return buf.Bytes(), nil
}

// DecodeGK parses a summary produced by (*GK).MarshalBinary.
func DecodeGK(data []byte) (*GK, error) {
	if len(data) < 4 || string(data[:4]) != magicGK {
		return nil, fmt.Errorf("quantile: not a GK blob")
	}
	rest := data[4:]
	if len(rest) < 8*4 {
		return nil, fmt.Errorf("quantile: truncated GK header")
	}
	u64 := func(off int) uint64 { return binary.LittleEndian.Uint64(rest[off:]) }
	epsilon := math.Float64frombits(u64(0))
	n := int64(u64(8))
	sinceCompress := u64(16)
	ntuples := u64(24)
	if !(epsilon > 0 && epsilon < 1) { // also rejects NaN
		return nil, fmt.Errorf("quantile: implausible GK epsilon %g", epsilon)
	}
	if n < 0 || ntuples > maxGKTuples || sinceCompress > math.MaxInt32 {
		return nil, fmt.Errorf("quantile: implausible GK header")
	}
	payload := rest[32:]
	if uint64(len(payload)) != ntuples*24 {
		return nil, fmt.Errorf("quantile: GK payload %d bytes, want %d", len(payload), ntuples*24)
	}
	g := &GK{
		epsilon:       epsilon,
		n:             n,
		sinceCompress: int(sinceCompress),
		tuples:        make([]tuple, ntuples),
	}
	for i := range g.tuples {
		off := i * 24
		g.tuples[i] = tuple{
			v:     math.Float64frombits(binary.LittleEndian.Uint64(payload[off:])),
			g:     int64(binary.LittleEndian.Uint64(payload[off+8:])),
			delta: int64(binary.LittleEndian.Uint64(payload[off+16:])),
		}
	}
	return g, nil
}
