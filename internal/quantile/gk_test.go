package quantile

import (
	"math"
	"sort"
	"testing"
	"testing/quick"

	"streamfreq/internal/prng"
)

func TestGKValidation(t *testing.T) {
	for _, eps := range []float64{0, 1, -0.1} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("expected panic for epsilon %v", eps)
				}
			}()
			New(eps)
		}()
	}
}

func TestGKEmpty(t *testing.T) {
	g := New(0.01)
	if _, err := g.Quantile(0.5); err == nil {
		t.Error("expected error on empty summary")
	}
	if g.N() != 0 || g.Size() != 0 {
		t.Error("empty summary has state")
	}
}

// checkQuantiles verifies every decile against the exact sorted data.
func checkQuantiles(t *testing.T, g *GK, sorted []float64) {
	t.Helper()
	n := len(sorted)
	slackF := g.Epsilon() * float64(n)
	for q := 0.0; q <= 1.0; q += 0.1 {
		got, err := g.Quantile(q)
		if err != nil {
			t.Fatal(err)
		}
		// Find got's rank range in the exact data.
		lo := sort.SearchFloat64s(sorted, got)
		hi := sort.Search(n, func(i int) bool { return sorted[i] > got })
		target := q * float64(n)
		if float64(hi) < target-slackF-1 || float64(lo) > target+slackF+1 {
			t.Errorf("q=%.1f: returned value has rank [%d,%d], want within ±%.0f of %.0f",
				q, lo, hi, slackF, target)
		}
	}
}

func TestGKUniformData(t *testing.T) {
	g := New(0.01)
	rng := prng.New(7)
	var data []float64
	for i := 0; i < 50000; i++ {
		v := rng.Float64()
		g.Insert(v)
		data = append(data, v)
	}
	if err := g.validate(); err != nil {
		t.Fatal(err)
	}
	sort.Float64s(data)
	checkQuantiles(t, g, data)
}

func TestGKSortedAndReversedInserts(t *testing.T) {
	for name, gen := range map[string]func(i, n int) float64{
		"ascending":  func(i, n int) float64 { return float64(i) },
		"descending": func(i, n int) float64 { return float64(n - i) },
	} {
		g := New(0.02)
		const n = 20000
		var data []float64
		for i := 0; i < n; i++ {
			v := gen(i, n)
			g.Insert(v)
			data = append(data, v)
		}
		if err := g.validate(); err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		sort.Float64s(data)
		checkQuantiles(t, g, data)
	}
}

func TestGKSpaceBound(t *testing.T) {
	g := New(0.01)
	rng := prng.New(9)
	for i := 0; i < 200000; i++ {
		g.Insert(rng.Float64())
	}
	// O((1/ε)·log(εn)) with modest constants: 1/ε = 100, log2(εn=2000) ≈ 11.
	if g.Size() > 100*11*3 {
		t.Errorf("summary holds %d tuples; space bound violated", g.Size())
	}
}

func TestGKDuplicateHeavy(t *testing.T) {
	g := New(0.05)
	var data []float64
	for i := 0; i < 10000; i++ {
		v := float64(i % 3)
		g.Insert(v)
		data = append(data, v)
	}
	if err := g.validate(); err != nil {
		t.Fatal(err)
	}
	sort.Float64s(data)
	checkQuantiles(t, g, data)
	med, _ := g.Quantile(0.5)
	if med != 1 {
		t.Errorf("median of {0,1,2}* = %v, want 1", med)
	}
}

func TestGKRankBoundsContainTruth(t *testing.T) {
	g := New(0.02)
	rng := prng.New(11)
	var data []float64
	for i := 0; i < 20000; i++ {
		v := math.Floor(rng.Float64() * 1000)
		g.Insert(v)
		data = append(data, v)
	}
	sort.Float64s(data)
	for _, probe := range []float64{0, 100, 499.5, 999} {
		lo, hi := g.Rank(probe)
		trueRank := int64(sort.Search(len(data), func(i int) bool { return data[i] > probe }))
		slack := int64(g.Epsilon()*float64(len(data))) + 1
		if trueRank < lo-slack || trueRank > hi+slack {
			t.Errorf("probe %v: true rank %d outside [%d−ε, %d+ε]", probe, trueRank, lo, hi)
		}
	}
}

func TestGKPropertyInvariantHolds(t *testing.T) {
	f := func(vals []float64) bool {
		g := New(0.1)
		for _, v := range vals {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				continue
			}
			g.Insert(v)
		}
		return g.validate() == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestGKQuantileClamps(t *testing.T) {
	g := New(0.1)
	for i := 0; i < 100; i++ {
		g.Insert(float64(i))
	}
	lo, err := g.Quantile(-0.5)
	if err != nil {
		t.Fatal(err)
	}
	hi, err := g.Quantile(1.5)
	if err != nil {
		t.Fatal(err)
	}
	if lo > hi {
		t.Errorf("clamped quantiles inverted: %v > %v", lo, hi)
	}
	if hi != 99 {
		t.Errorf("max quantile = %v, want 99", hi)
	}
}
