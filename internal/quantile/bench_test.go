package quantile

// Ingest cost of the GK summary — the per-arrival price of `freqd
// -algo gk`. One insert is a binary search plus a slice insert, with a
// compress pass amortized over every 1/(2ε) arrivals; the benchmark
// holds the whole schedule (search, shift, compress) at the serving ε,
// so the committed trajectory catches both a slower search and a
// compression regression that lets the tuple list grow.

import (
	"testing"

	"streamfreq/internal/zipf"
)

func BenchmarkGKInsert(b *testing.B) {
	g, err := zipf.NewGenerator(1<<15, 1.1, 0x6B5E, true)
	if err != nil {
		b.Fatal(err)
	}
	stream := g.Stream(1 << 18)
	for _, eps := range []float64{0.01, 0.001} {
		b.Run(epsLabel(eps), func(b *testing.B) {
			s := New(eps)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				s.Update(stream[i%len(stream)], 1)
			}
		})
	}
}

func epsLabel(eps float64) string {
	if eps == 0.01 {
		return "eps=0.01"
	}
	return "eps=0.001"
}
