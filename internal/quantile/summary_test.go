package quantile

import (
	"bytes"
	"errors"
	"math"
	"sort"
	"testing"

	"streamfreq/internal/core"
	"streamfreq/internal/prng"
)

// zipfStream materializes a deterministic skewed integer stream over a
// small ordered universe, mirroring the root package's test streams.
func zipfStream(seed uint64, n int, universe uint64) []core.Item {
	rng := prng.New(seed)
	items := make([]core.Item, n)
	for i := range items {
		// Pareto-ish skew folded into the universe keeps a few values heavy.
		v := uint64(rng.Pareto(1.1, 1))
		items[i] = core.Item(v % universe)
	}
	return items
}

func TestGKSummaryContract(t *testing.T) {
	g := New(0.01)
	var s core.Summary = g // compile-time: GK is a core.Summary
	items := zipfStream(3, 30000, 1024)
	exact := map[core.Item]int64{}
	for _, it := range items {
		s.Update(it, 1)
		exact[it]++
	}
	if s.Name() != "GK" {
		t.Fatalf("Name() = %q, want GK", s.Name())
	}
	if s.N() != int64(len(items)) {
		t.Fatalf("N() = %d, want %d", s.N(), len(items))
	}
	if s.Bytes() <= 0 {
		t.Fatal("Bytes() not positive")
	}
	slack := int64(2*g.Epsilon()*float64(s.N())) + 2
	for _, probe := range []core.Item{0, 1, 2, 5, 100, 1023} {
		est := s.Estimate(probe)
		if diff := est - exact[probe]; diff > slack || diff < -slack {
			t.Errorf("Estimate(%d) = %d, exact %d, beyond ±%d", probe, est, exact[probe], slack)
		}
	}
	// Query at a heavy threshold: every value whose true count clears
	// threshold+slack must be reported (rank error can hide borderline
	// values, never clearly-heavy ones).
	threshold := s.N() / 20
	got := map[core.Item]bool{}
	report := s.Query(threshold)
	for i, ic := range report {
		got[ic.Item] = true
		if i > 0 && report[i-1].Count < ic.Count {
			t.Fatal("Query report not in descending count order")
		}
	}
	for it, c := range exact {
		if c >= threshold+slack && !got[it] {
			t.Errorf("Query(%d) missed value %d with true count %d", threshold, it, c)
		}
	}
}

func TestGKUpdateNegativePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on negative count")
		}
	}()
	New(0.01).Update(1, -1)
}

func TestGKBatchMatchesScalar(t *testing.T) {
	items := zipfStream(5, 20000, 4096)
	scalar, batched := New(0.02), New(0.02)
	for _, it := range items {
		scalar.Update(it, 1)
	}
	core.UpdateBatches(batched, items, 1000)
	a, err := scalar.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	b, err := batched.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a, b) {
		t.Fatal("batched ingest is not bit-identical to scalar ingest")
	}
}

func TestGKCloneFidelityAndIndependence(t *testing.T) {
	g := New(0.02)
	items := zipfStream(7, 10000, 512)
	core.UpdateAll(g, items)
	snap := g.Snapshot().(*GK)
	a, _ := g.MarshalBinary()
	b, _ := snap.MarshalBinary()
	if !bytes.Equal(a, b) {
		t.Fatal("snapshot does not encode identically to parent")
	}
	// Mutating the parent must not move the snapshot, and vice versa.
	core.UpdateAll(g, items[:100])
	if c, _ := snap.MarshalBinary(); !bytes.Equal(b, c) {
		t.Fatal("parent update leaked into snapshot")
	}
	snap.Update(1, 5)
	if c, _ := g.MarshalBinary(); bytes.Equal(b, c) {
		t.Fatal("parent did not advance")
	}
}

func TestGKMergeAccuracy(t *testing.T) {
	a, b := New(0.01), New(0.01)
	sa := zipfStream(11, 20000, 2048)
	sb := zipfStream(13, 30000, 2048)
	core.UpdateAll(a, sa)
	core.UpdateAll(b, sb)
	if err := a.Merge(b); err != nil {
		t.Fatal(err)
	}
	if a.N() != int64(len(sa)+len(sb)) {
		t.Fatalf("merged N = %d, want %d", a.N(), len(sa)+len(sb))
	}
	var union []float64
	for _, it := range sa {
		union = append(union, float64(it))
	}
	for _, it := range sb {
		union = append(union, float64(it))
	}
	sort.Float64s(union)
	// The merged summary stays ε-approximate over the union stream.
	n := len(union)
	slack := a.Epsilon()*float64(n) + 2
	for q := 0.0; q <= 1.0; q += 0.1 {
		got, err := a.Quantile(q)
		if err != nil {
			t.Fatal(err)
		}
		lo := sort.SearchFloat64s(union, got)
		hi := sort.Search(n, func(i int) bool { return union[i] > got })
		target := q * float64(n)
		if float64(hi) < target-slack || float64(lo) > target+slack {
			t.Errorf("merged q=%.1f: rank [%d,%d], want within ±%.0f of %.0f", q, lo, hi, slack, target)
		}
	}
}

func TestGKMergeIncompatible(t *testing.T) {
	a, b := New(0.01), New(0.02)
	b.Insert(1)
	if err := a.Merge(b); !errors.Is(err, core.ErrIncompatible) {
		t.Fatalf("epsilon mismatch: got %v, want ErrIncompatible", err)
	}
	if err := a.Merge(fakeSummary{}); !errors.Is(err, core.ErrIncompatible) {
		t.Fatalf("foreign type: got %v, want ErrIncompatible", err)
	}
}

type fakeSummary struct{}

func (fakeSummary) Update(core.Item, int64)      {}
func (fakeSummary) Estimate(core.Item) int64     { return 0 }
func (fakeSummary) Query(int64) []core.ItemCount { return nil }
func (fakeSummary) N() int64                     { return 0 }
func (fakeSummary) Bytes() int                   { return 0 }
func (fakeSummary) Name() string                 { return "fake" }

func TestGKMergeIntoEmpty(t *testing.T) {
	a, b := New(0.01), New(0.01)
	core.UpdateAll(b, zipfStream(17, 5000, 256))
	if err := a.Merge(b); err != nil {
		t.Fatal(err)
	}
	ae, _ := a.MarshalBinary()
	be, _ := b.MarshalBinary()
	if !bytes.Equal(ae, be) {
		t.Fatal("merge into empty summary should copy the operand's state")
	}
	// And the operand must stay independent.
	a.Insert(7)
	if be2, _ := b.MarshalBinary(); !bytes.Equal(be, be2) {
		t.Fatal("merge aliased the operand's tuples")
	}
}

func TestGKEncodeRoundTrip(t *testing.T) {
	g := New(0.015)
	core.UpdateAll(g, zipfStream(19, 25000, 4096))
	blob, err := g.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	blob2, _ := g.MarshalBinary()
	if !bytes.Equal(blob, blob2) {
		t.Fatal("encoding is not deterministic")
	}
	dec, err := DecodeGK(blob)
	if err != nil {
		t.Fatal(err)
	}
	reblob, err := dec.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(blob, reblob) {
		t.Fatal("decode→encode is not bit-identical")
	}
}

// TestGKDecodeThenContinue pins the recovery contract: decoding a
// checkpoint and replaying the tail must land bit-identically on the
// same state as uninterrupted ingest — which requires sinceCompress to
// ride the wire format.
func TestGKDecodeThenContinue(t *testing.T) {
	items := zipfStream(23, 30000, 2048)
	ref := New(0.01)
	core.UpdateAll(ref, items)
	for _, cut := range []int{0, 1, 777, 15000, len(items) - 1} {
		head := New(0.01)
		core.UpdateAll(head, items[:cut])
		blob, err := head.MarshalBinary()
		if err != nil {
			t.Fatal(err)
		}
		resumed, err := DecodeGK(blob)
		if err != nil {
			t.Fatal(err)
		}
		core.UpdateAll(resumed, items[cut:])
		a, _ := ref.MarshalBinary()
		b, _ := resumed.MarshalBinary()
		if !bytes.Equal(a, b) {
			t.Fatalf("cut at %d: decode-then-replay diverged from continuous ingest", cut)
		}
	}
}

func TestGKDecodeRejectsCorruptBlobs(t *testing.T) {
	g := New(0.01)
	core.UpdateAll(g, zipfStream(29, 1000, 64))
	blob, _ := g.MarshalBinary()
	cases := map[string][]byte{
		"short":           blob[:3],
		"bad magic":       append([]byte("XX01"), blob[4:]...),
		"truncated head":  blob[:20],
		"truncated body":  blob[:len(blob)-5],
		"trailing":        append(append([]byte{}, blob...), 0),
		"bad epsilon":     corruptEpsilon(blob, math.NaN()),
		"epsilon too big": corruptEpsilon(blob, 2),
	}
	for name, b := range cases {
		if _, err := DecodeGK(b); err == nil {
			t.Errorf("%s: decode accepted a corrupt blob", name)
		}
	}
}

func corruptEpsilon(blob []byte, eps float64) []byte {
	c := append([]byte{}, blob...)
	bits := math.Float64bits(eps)
	for i := 0; i < 8; i++ {
		c[4+i] = byte(bits >> (8 * i))
	}
	return c
}

func TestGKRangeEstimate(t *testing.T) {
	g := New(0.01)
	items := zipfStream(31, 40000, 1024)
	exact := map[uint64]int64{}
	for _, it := range items {
		exact[uint64(it)]++
	}
	core.UpdateAll(g, items)
	slack := int64(2*g.Epsilon()*float64(g.N())) + 2
	for _, r := range [][2]uint64{{0, 0}, {0, 10}, {5, 100}, {0, 1023}, {500, 2000}} {
		var want int64
		for v := r[0]; v <= r[1] && v < 1024; v++ {
			want += exact[v]
		}
		got, err := g.RangeEstimate(r[0], r[1])
		if err != nil {
			t.Fatal(err)
		}
		if diff := got - want; diff > slack || diff < -slack {
			t.Errorf("RangeEstimate(%d, %d) = %d, exact %d, beyond ±%d", r[0], r[1], got, want, slack)
		}
	}
	if _, err := g.RangeEstimate(10, 5); err == nil {
		t.Fatal("inverted range must error")
	}
}

func TestGKQuantileQuery(t *testing.T) {
	g := New(0.01)
	if _, err := g.QuantileQuery(0.5); err == nil {
		t.Fatal("empty summary must error")
	}
	items := zipfStream(37, 40000, 1024)
	var sorted []uint64
	for _, it := range items {
		sorted = append(sorted, uint64(it))
	}
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	core.UpdateAll(g, items)
	slack := g.Epsilon()*float64(len(items)) + 2
	for q := 0.0; q <= 1.0; q += 0.25 {
		got, err := g.QuantileQuery(q)
		if err != nil {
			t.Fatal(err)
		}
		lo := sort.Search(len(sorted), func(i int) bool { return sorted[i] >= got })
		hi := sort.Search(len(sorted), func(i int) bool { return sorted[i] > got })
		target := q * float64(len(sorted))
		if float64(hi) < target-slack || float64(lo) > target+slack {
			t.Errorf("q=%.2f: value %d has rank [%d,%d], want within ±%.0f of %.0f", q, got, lo, hi, slack, target)
		}
	}
}
