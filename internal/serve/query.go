package serve

import (
	"encoding/json"
	"fmt"
	"net/http"
	"strconv"
	"strings"

	"streamfreq/internal/core"
	"streamfreq/internal/obs"
)

// The query half of the freqd HTTP API, factored so any process that can
// produce a core.ReadView serves the identical /topk and /estimate —
// a single node answers from its snapshot epoch, a freqmerge coordinator
// from its merged cluster view, and clients cannot tell them apart.

// Wire constants of the summary-shipping endpoint (GET /summary): the
// body is the summary's registry Encode blob, and the headers carry the
// metadata a coordinator needs without decoding first.
const (
	// SummaryContentType is the media type of an Encode blob in transit.
	SummaryContentType = "application/x-freq-summary"
	// HeaderAlgo carries the serving algorithm label.
	HeaderAlgo = "X-Freq-Algo"
	// HeaderN carries the stream position (Summary.N) of the shipped
	// snapshot, as decimal.
	HeaderN = "X-Freq-N"
	// HeaderEpoch carries the node's process epoch, as decimal. The epoch
	// is drawn once per process start, so a changed epoch tells a puller
	// the node restarted: whatever it ships now is the recovered
	// cumulative state (WAL replay included), to be swapped in wholesale —
	// replaced, never added, or a restart would double-count.
	HeaderEpoch = "X-Freq-Epoch"
)

// WriteJSON renders v with the given status; encoding failures are
// programming errors surfaced as broken responses, not panics.
func WriteJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(v)
}

// ErrorBody is the one error envelope every daemon speaks:
// {"error":{"code":"...","message":"..."}}. The code is a stable
// machine-readable token derived from the status; the message is for
// humans and may reword freely.
type ErrorBody struct {
	Code    string `json:"code"`
	Message string `json:"message"`
}

// HTTPError renders the JSON error envelope with the given status.
func HTTPError(w http.ResponseWriter, status int, format string, args ...any) {
	WriteJSON(w, status, map[string]ErrorBody{"error": {
		Code:    errorCode(status),
		Message: fmt.Sprintf(format, args...),
	}})
}

// reportedItem is one /topk row.
type reportedItem struct {
	Item  uint64 `json:"item"`
	Count int64  `json:"count"`
	Token string `json:"token,omitempty"`
}

// parseItem accepts decimal or 0x-prefixed hex item identifiers.
func parseItem(s string) (core.Item, error) {
	base := 10
	if strings.HasPrefix(s, "0x") || strings.HasPrefix(s, "0X") {
		s, base = s[2:], 16
	}
	v, err := strconv.ParseUint(s, base, 64)
	return core.Item(v), err
}

// QueryHandlers answers /topk and /estimate against pinned views. View
// is called once per request so the n/threshold/report triple of a
// response is internally consistent; Name (optional) labels reported
// items with token spellings; Counters (optional) counts query traffic
// — an obs.Set, so concurrent query handlers never serialize on a
// shared mutex the way the old metrics.Meter made them (Meter survives
// in internal/metrics for the offline harness only).
type QueryHandlers struct {
	View     func() core.ReadView
	Name     func(core.Item) string
	Counters *obs.Set
	// DefaultPhi is the threshold used when a /topk request names
	// neither ?phi nor ?threshold (0 means the historical 0.01). Tenant
	// routes set it to the namespace's φ.
	DefaultPhi float64
}

func (q *QueryHandlers) defaultPhi() float64 {
	if q.DefaultPhi > 0 {
		return q.DefaultPhi
	}
	return 0.01
}

// windowedView is the optional recent-traffic surface of a sliding-
// window summary (window.Windowed and its snapshots implement it): the
// φ-threshold denominator over the current window rather than the whole
// stream history. A /topk?phi= against a windowed view means "φ of
// recent traffic" — thresholding φ against the ever-growing total N
// would drift the operating point above anything a window can hold.
type windowedView interface {
	WindowN() int64
}

// thresholdN returns the denominator φ-style thresholds divide: the
// windowed stream length for windowed views, the full stream length
// otherwise.
func thresholdN(view core.ReadView) int64 {
	if wv, ok := view.(windowedView); ok {
		return wv.WindowN()
	}
	return view.N()
}

func (q *QueryHandlers) count(key string) {
	if q.Counters != nil {
		q.Counters.Add(key, 1)
	}
}

func (q *QueryHandlers) label(it core.Item) string {
	if q.Name == nil {
		return ""
	}
	return q.Name(it)
}

// TopK answers a threshold query (?phi= or ?threshold=, &k= caps the
// report, &horizon= narrows a multi-resolution summary to one wall-clock
// span) against one pinned view. Method enforcement is the API wrapper's
// job (Route), not the handler's.
func (q *QueryHandlers) TopK(w http.ResponseWriter, r *http.Request) {
	query := r.URL.Query()
	view := q.View()
	if raw := query.Get("horizon"); raw != "" {
		v, ok := resolveHorizon(w, view, raw)
		if !ok {
			return
		}
		view = v
	}
	n := thresholdN(view)
	threshold, ok := q.parseThreshold(w, query, n)
	if !ok {
		return
	}
	report := view.Query(threshold)
	if kStr := query.Get("k"); kStr != "" {
		k, err := strconv.Atoi(kStr)
		if err != nil || k < 0 {
			HTTPError(w, http.StatusBadRequest, "k must be a non-negative integer")
			return
		}
		if k < len(report) {
			report = report[:k]
		}
	}
	items := make([]reportedItem, len(report))
	for i, ic := range report {
		items[i] = reportedItem{Item: uint64(ic.Item), Count: ic.Count, Token: q.label(ic.Item)}
	}
	q.count("queries.topk")
	WriteJSON(w, http.StatusOK, map[string]any{"n": n, "threshold": threshold, "items": items})
}

// Estimate answers a point query (?item=123 | ?item=0x7b | ?token=foo)
// from one pinned view.
func (q *QueryHandlers) Estimate(w http.ResponseWriter, r *http.Request) {
	query := r.URL.Query()
	var it core.Item
	switch {
	case query.Get("item") != "":
		v, err := parseItem(query.Get("item"))
		if err != nil {
			HTTPError(w, http.StatusBadRequest, "item must be a decimal or 0x-hex uint64")
			return
		}
		it = v
	case query.Get("token") != "":
		it = core.HashString(query.Get("token"))
	default:
		HTTPError(w, http.StatusBadRequest, "item or token parameter required")
		return
	}
	q.count("queries.estimate")
	WriteJSON(w, http.StatusOK, map[string]any{"item": uint64(it), "estimate": q.View().Estimate(it)})
}

// WriteSummary renders one summary snapshot as a /summary response:
// metadata headers, then the Encode blob. Shared by nodes (live snapshot)
// and coordinators (merged cluster state), which is what lets clusters
// stack — a coordinator's /summary feeds a higher-tier coordinator
// exactly like a node's feeds it.
func WriteSummary(w http.ResponseWriter, algo string, epoch uint64, snap core.Summary) {
	blob, err := core.EncodeSummary(snap)
	if err != nil {
		HTTPError(w, http.StatusNotImplemented, "summary has no wire format: %v", err)
		return
	}
	h := w.Header()
	h.Set("Content-Type", SummaryContentType)
	h.Set(HeaderAlgo, algo)
	h.Set(HeaderN, strconv.FormatInt(snap.N(), 10))
	h.Set(HeaderEpoch, strconv.FormatUint(epoch, 10))
	w.WriteHeader(http.StatusOK)
	_, _ = w.Write(blob)
}
