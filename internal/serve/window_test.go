package serve_test

// Windowed serving end to end, plus WAL-lag load shedding: the freqd
// behaviours this PR adds over a real HTTP loopback. The windowed tests
// pin the query semantics (φ thresholds against the window, not the
// history; recently-hot reported, expired forgotten), the /stats window
// section, and the acceptance criterion — a killed-and-recovered
// windowed daemon re-encodes bit-identically to its durable prefix and
// serves recall 1 at the φ·W operating point.

import (
	"net/http/httptest"
	"testing"
	"time"

	"streamfreq"
	"streamfreq/internal/core"
	"streamfreq/internal/persist"
	"streamfreq/internal/serve"
	"streamfreq/internal/stream"
	"streamfreq/internal/window"
	"streamfreq/internal/zipf"
)

// shiftingStream builds a two-phase workload: background Zipf traffic
// with oldHot taking ~25% of phase one and newHot ~25% of phase two, so
// whole-stream and windowed summaries disagree about what is hot now.
func shiftingStream(t *testing.T, phase1, phase2 int, oldHot, newHot core.Item, seed uint64) []core.Item {
	t.Helper()
	g, err := zipf.NewGenerator(1<<14, 0.9, seed, true)
	if err != nil {
		t.Fatal(err)
	}
	out := make([]core.Item, 0, phase1+phase2)
	for i := 0; i < phase1; i++ {
		if i%4 == 0 {
			out = append(out, oldHot)
		} else {
			out = append(out, g.Next())
		}
	}
	for i := 0; i < phase2; i++ {
		if i%4 == 0 {
			out = append(out, newHot)
		} else {
			out = append(out, g.Next())
		}
	}
	return out
}

type windowStatsResponse struct {
	N      int64 `json:"n"`
	Window struct {
		Size            int   `json:"size"`
		Blocks          int   `json:"blocks"`
		BlockLen        int   `json:"block_len"`
		WindowLive      int64 `json:"window_live"`
		WindowN         int64 `json:"window_n"`
		Slack           int64 `json:"slack"`
		BoundaryExpired int64 `json:"boundary_expired"`
	} `json:"window"`
}

// TestFreqdWindowedServing: a windowed target behind the stock serving
// stack answers /topk over recent traffic — φ thresholds against the
// window span, yesterday's hot item gone, today's reported — and /stats
// surfaces the window accounting.
func TestFreqdWindowedServing(t *testing.T) {
	const (
		size, blocks, k = 4000, 8, 200
		oldHot, newHot  = core.Item(900001), core.Item(900002)
	)
	win, err := streamfreq.NewWindowed(size, blocks, k)
	if err != nil {
		t.Fatal(err)
	}
	target := core.NewConcurrent(win).ServeSnapshots(0)
	srv := serve.NewServer(serve.Options{Target: target, Algo: "SSW"})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	// Phase one fills several windows with oldHot; phase two is more
	// than W + W/B items of newHot traffic, so oldHot is fully expired.
	items := shiftingStream(t, 12_000, size+size/blocks+1000, oldHot, newHot, 0x51D)
	postOK(t, ts.URL+"/ingest", "application/octet-stream", stream.AppendRaw(nil, items))
	postOK(t, ts.URL+"/refresh", "application/json", nil)

	var tr topkResponse
	getJSON(t, ts.URL+"/topk?phi=0.1", &tr)
	if tr.N != size {
		t.Fatalf("/topk windowed denominator = %d, want W=%d", tr.N, size)
	}
	if tr.Threshold != size/10 {
		t.Fatalf("/topk threshold = %d, want φ·W = %d", tr.Threshold, size/10)
	}
	var sawNew, sawOld bool
	for _, ic := range tr.Items {
		switch core.Item(ic.Item) {
		case newHot:
			sawNew = true
		case oldHot:
			sawOld = true
		}
	}
	if !sawNew || sawOld {
		t.Fatalf("windowed /topk sawNew=%v sawOld=%v, want the recent hot item only (items %v)", sawNew, sawOld, tr.Items)
	}

	// The expired item's estimate is bounded by the advertised slack.
	var er struct {
		Estimate int64 `json:"estimate"`
	}
	getJSON(t, ts.URL+"/estimate?item=900001", &er)
	if er.Estimate > win.Slack() {
		t.Fatalf("expired item estimated at %d, above slack %d", er.Estimate, win.Slack())
	}

	var st windowStatsResponse
	getJSON(t, ts.URL+"/stats", &st)
	if st.N != int64(len(items)) {
		t.Fatalf("/stats n = %d, want the whole-stream total %d", st.N, len(items))
	}
	w := st.Window
	if w.Size != size || w.Blocks != blocks || w.BlockLen != size/blocks {
		t.Fatalf("/stats window geometry = %+v, want %d/%d/%d", w, size, blocks, size/blocks)
	}
	if w.WindowN != size || w.WindowLive < size || w.WindowLive > int64(size+size/blocks) {
		t.Fatalf("/stats window accounting = %+v, want window_n=W and live in [W, W+W/B]", w)
	}
	if w.Slack <= 0 || w.BoundaryExpired != w.WindowLive-w.WindowN {
		t.Fatalf("/stats window error accounting inconsistent: %+v", w)
	}
}

// buildWindowedDurable is freqd's -window startup sequence over dir.
func buildWindowedDurable(t *testing.T, dir string, size, blocks, k int) (*core.Concurrent, *persist.Store, persist.RecoveryStats) {
	t.Helper()
	win, err := streamfreq.NewWindowed(size, blocks, k)
	if err != nil {
		t.Fatal(err)
	}
	target := core.NewConcurrent(win)
	store, err := persist.Open(persist.Options{
		Dir:    dir,
		Algo:   "SSW",
		Fsync:  persist.FsyncAlways,
		Decode: streamfreq.Decode,
	})
	if err != nil {
		t.Fatal(err)
	}
	stats, err := store.Recover(target)
	if err != nil {
		t.Fatalf("recover: %v", err)
	}
	target.PersistTo(store)
	target.ServeSnapshots(5 * time.Millisecond)
	return target, store, stats
}

func encodeState(t *testing.T, s core.Snapshotter) []byte {
	t.Helper()
	blob, err := core.EncodeSummary(s.Snapshot())
	if err != nil {
		t.Fatal(err)
	}
	return blob
}

// TestFreqdWindowedDurableRestart is the acceptance e2e: a windowed
// freqd ingests over the wire with a checkpoint partway, dies without
// warning, recovers, re-encodes bit-identically to the durable prefix
// (checkpoint holds only live blocks; WAL replay reconstructs block
// boundaries from the logged batch records), and serves recall 1 at the
// φ·W operating point against exact truth over the final window.
func TestFreqdWindowedDurableRestart(t *testing.T) {
	const (
		phi             = 0.005
		size, blocks, k = 8192, 8, 201
		batch           = core.DefaultBatchSize
		streamN         = 16 * batch // 4096-aligned halves keep wire and replay batch boundaries identical
	)
	dir := t.TempDir()
	items := shiftingStream(t, streamN/2, streamN/2, core.Item(700001), core.Item(700002), 0xD00D)

	target, store, _ := buildWindowedDurable(t, dir, size, blocks, k)
	srv := serve.NewServer(serve.Options{Target: target, Algo: "SSW", Store: store})
	ts := httptest.NewServer(srv.Handler())
	postOK(t, ts.URL+"/ingest", "application/octet-stream", stream.AppendRaw(nil, items[:streamN/2]))
	postOK(t, ts.URL+"/checkpoint", "application/json", nil)
	postOK(t, ts.URL+"/ingest", "application/octet-stream", stream.AppendRaw(nil, items[streamN/2:]))
	ts.Close()
	// Kill -9: no Close, no final checkpoint.

	target2, store2, rstats := buildWindowedDurable(t, dir, size, blocks, k)
	defer store2.Close()
	if rstats.RecoveredN != streamN || rstats.CheckpointN == 0 || rstats.ReplayedRecords == 0 {
		t.Fatalf("recovery did not exercise checkpoint+WAL: %+v", rstats)
	}

	// Bit-identical to a fresh windowed summary fed the durable prefix
	// with the original (wire-ingest) batch boundaries.
	fresh, err := streamfreq.NewWindowed(size, blocks, k)
	if err != nil {
		t.Fatal(err)
	}
	streamfreq.UpdateBatches(fresh, items, batch)
	got := encodeState(t, target2)
	want, err := core.EncodeSummary(fresh)
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != string(want) {
		t.Fatalf("recovered windowed state is not bit-identical to the durable prefix (%d vs %d bytes)", len(got), len(want))
	}

	// Recall 1 at φ·W over the final window.
	srv2 := serve.NewServer(serve.Options{Target: target2, Algo: "SSW", Store: store2})
	ts2 := httptest.NewServer(srv2.Handler())
	defer ts2.Close()
	postOK(t, ts2.URL+"/refresh", "application/json", nil)
	var tr topkResponse
	getJSON(t, ts2.URL+"/topk?phi=0.005", &tr)
	if tr.N != size {
		t.Fatalf("/topk after restart: windowed n = %d, want %d", tr.N, size)
	}
	truth := map[core.Item]int64{}
	for _, it := range items[len(items)-size:] {
		truth[it]++
	}
	reported := map[core.Item]bool{}
	for _, it := range tr.Items {
		reported[core.Item(it.Item)] = true
	}
	span := float64(size)
	threshold := int64(phi * span)
	for it, tru := range truth {
		if tru >= threshold && !reported[it] {
			t.Fatalf("item %d with %d occurrences in the final window ≥ φ·W=%d missing from /topk", it, tru, threshold)
		}
	}

	// Mode exclusivity: the windowed data directory never restores into
	// a flat summary (and vice versa) — the algo label fails fast.
	flat := core.NewConcurrent(streamfreq.MustNew("SSH", phi, 1))
	storeX, err := persist.Open(persist.Options{Dir: dir, Algo: "SSH", Fsync: persist.FsyncAlways, Decode: streamfreq.Decode})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := storeX.Recover(flat); err == nil {
		t.Fatal("flat SSH recovery over a windowed data directory succeeded")
	}
}

// TestIngestShedOnWALLag: with -max-lag set, ingest is shed with 429 +
// Retry-After once the unsynced WAL lag passes the bound — the
// throttled-writer scenario, reproduced deterministically with fsync
// policy "never", under which nothing becomes durable until a rotation
// (here: a checkpoint) seals the segment.
func TestIngestShedOnWALLag(t *testing.T) {
	const maxLag = 100
	dir := t.TempDir()
	target := core.NewConcurrent(streamfreq.MustNew("SSH", 0.01, 1))
	store, err := persist.Open(persist.Options{
		Dir:    dir,
		Algo:   "SSH",
		Fsync:  persist.FsyncNever, // the throttled writer: the disk never catches up on its own
		Decode: streamfreq.Decode,
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := store.Recover(target); err != nil {
		t.Fatal(err)
	}
	target.PersistTo(store)
	target.ServeSnapshots(0)
	srv := serve.NewServer(serve.Options{Target: target, Algo: "SSH", Store: store, MaxLag: maxLag})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	defer store.Close()

	// First write is admitted (lag 0 at the gate) and opens the lag.
	postOK(t, ts.URL+"/ingest", "application/octet-stream", stream.AppendRaw(nil, zipf.Sequential(500)))

	resp := post(t, ts.URL+"/ingest", "application/octet-stream", stream.AppendRaw(nil, zipf.Sequential(10)))
	defer resp.Body.Close()
	if resp.StatusCode != 429 {
		t.Fatalf("ingest past -max-lag: %s, want 429", resp.Status)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Fatal("429 response missing Retry-After")
	}

	// The pressure is observable.
	var st struct {
		WAL struct {
			Lag    int64 `json:"lag"`
			MaxLag int64 `json:"max_lag"`
		} `json:"wal"`
		Counters map[string]int64 `json:"counters"`
	}
	getJSON(t, ts.URL+"/stats", &st)
	if st.WAL.Lag < 500 || st.WAL.MaxLag != maxLag {
		t.Fatalf("/stats wal lag/max_lag = %d/%d, want ≥500/%d", st.WAL.Lag, st.WAL.MaxLag, maxLag)
	}
	if st.Counters["ingest.shed"] == 0 {
		t.Fatal("/stats counters missing ingest.shed")
	}

	// Once the log drains (a checkpoint seals the segment, making the
	// tail durable), ingest is admitted again — shedding is
	// backpressure, not a latch.
	if _, err := store.Checkpoint(target); err != nil {
		t.Fatal(err)
	}
	postOK(t, ts.URL+"/ingest", "application/octet-stream", stream.AppendRaw(nil, zipf.Sequential(10)))
}

// Compile-time: a windowed snapshot satisfies the serving-layer window
// surfaces the handlers dispatch on.
var _ interface {
	WindowN() int64
	WindowStats() window.Stats
} = (*window.Windowed)(nil)
