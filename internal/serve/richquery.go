package serve

import (
	"net/http"
	"net/url"
	"strconv"
	"time"

	"streamfreq/internal/core"
	"streamfreq/internal/sketches"
)

// The rich query surface: hierarchical heavy hitters, range counts, and
// value quantiles, served when the algorithm behind the pinned view can
// answer them. These are capability-dispatched — the routes are always
// registered (the API surface does not depend on flags), and a request
// against a summary that lacks the capability gets the 404 envelope
// naming which -algo choices do support it. The same handlers run on a
// node (freqd) and a coordinator (freqmerge), because the coordinator's
// merged view is the same concrete summary type the nodes ship.

// hierarchyView answers prefix-granularity queries: the dyadic sketch
// hierarchies (*sketches.Hierarchical — CMH and CSH) implement it.
type hierarchyView interface {
	HeavyPrefixes(threshold int64) []sketches.PrefixCount
	Bits() uint
	UniverseBits() uint
}

// rangeView answers "how many arrivals landed in [lo, hi]": the sketch
// hierarchies (dyadic cover) and the GK quantile summary (rank
// difference) implement it with this exact signature.
type rangeView interface {
	RangeEstimate(lo, hi uint64) (int64, error)
}

// quantileView answers "what value sits at rank q·N": sketch hierarchies
// (binary search over prefix sums) and GK (the native query) implement it.
type quantileView interface {
	QuantileQuery(q float64) (uint64, error)
}

// horizonedView is the wall-clock multi-resolution surface
// (window.MultiRes): per-horizon merged views with horizon-scoped
// thresholds.
type horizonedView interface {
	HorizonView(d time.Duration) (core.ReadView, error)
	Horizons() []time.Duration
}

// summaryExposer lets composed read views (horizon views, and any future
// wrapper that carries a concrete summary inside) surface that summary
// for capability dispatch, so /v1/hhh?horizon=1m can reach the
// Hierarchical merged from a MultiRes bucket ring.
type summaryExposer interface {
	Summary() core.Summary
}

// capabilitySource unwraps a view to the value capability interfaces
// should be asserted against.
func capabilitySource(view core.ReadView) any {
	if se, ok := view.(summaryExposer); ok {
		return se.Summary()
	}
	return view
}

// resolveHorizon narrows view to the wall-clock horizon named by raw
// (a Go duration: 1m, 1h, 24h). On failure it writes the error envelope
// and returns false: a malformed or unconfigured horizon is the
// client's 400, a summary with no horizons at all is a 404 (the
// resource — wall-clock resolution — does not exist on this server).
func resolveHorizon(w http.ResponseWriter, view core.ReadView, raw string) (core.ReadView, bool) {
	d, err := time.ParseDuration(raw)
	if err != nil || d <= 0 {
		HTTPError(w, http.StatusBadRequest, "horizon must be a positive Go duration (1m, 1h, 24h)")
		return nil, false
	}
	hv, ok := view.(horizonedView)
	if !ok {
		HTTPError(w, http.StatusNotFound,
			"the serving summary has no wall-clock horizons; start freqd with -horizons")
		return nil, false
	}
	v, err := hv.HorizonView(d)
	if err != nil {
		HTTPError(w, http.StatusBadRequest, "%v", err)
		return nil, false
	}
	return v, true
}

// parseThreshold resolves the ?threshold= / ?phi= pair every
// threshold-style query accepts (φ scaled against n, the same
// denominator /topk uses). On bad input it writes the 400 envelope and
// reports false.
func (q *QueryHandlers) parseThreshold(w http.ResponseWriter, query url.Values, n int64) (int64, bool) {
	if ts := query.Get("threshold"); ts != "" {
		t, err := strconv.ParseInt(ts, 10, 64)
		if err != nil || t < 1 {
			HTTPError(w, http.StatusBadRequest, "threshold must be a positive integer")
			return 0, false
		}
		return t, true
	}
	phiStr := query.Get("phi")
	if phiStr == "" {
		phiStr = strconv.FormatFloat(q.defaultPhi(), 'g', -1, 64)
	}
	phi, err := strconv.ParseFloat(phiStr, 64)
	if err != nil || phi <= 0 || phi >= 1 {
		HTTPError(w, http.StatusBadRequest, "phi must be in (0,1)")
		return 0, false
	}
	threshold := int64(phi * float64(n))
	if threshold < 1 {
		threshold = 1
	}
	return threshold, true
}

// hhhRow is one /hhh report row: a prefix at a hierarchy level with its
// estimated count, the residual after discounting already-reported
// finer-level heavy prefixes, and whether that residual still clears the
// threshold (the hierarchical-heavy-hitter flag).
type hhhRow struct {
	Prefix   uint64 `json:"prefix"`
	Level    int    `json:"level"`
	Count    int64  `json:"count"`
	Residual int64  `json:"residual"`
	HHH      bool   `json:"hhh"`
}

// HHH answers a hierarchical heavy-hitter query (?phi= or ?threshold=,
// optional &horizon=) against one pinned view. Requires a hierarchy
// algorithm (-algo cmh or csh).
func (q *QueryHandlers) HHH(w http.ResponseWriter, r *http.Request) {
	query := r.URL.Query()
	view := q.View()
	if raw := query.Get("horizon"); raw != "" {
		v, ok := resolveHorizon(w, view, raw)
		if !ok {
			return
		}
		view = v
	}
	h, ok := capabilitySource(view).(hierarchyView)
	if !ok {
		HTTPError(w, http.StatusNotFound,
			"the serving algorithm does not answer hierarchical queries; run freqd with -algo cmh or -algo csh")
		return
	}
	n := thresholdN(view)
	threshold, ok := q.parseThreshold(w, query, n)
	if !ok {
		return
	}
	report := h.HeavyPrefixes(threshold)
	rows := make([]hhhRow, len(report))
	for i, pc := range report {
		rows[i] = hhhRow{
			Prefix:   uint64(pc.Prefix),
			Level:    pc.Level,
			Count:    pc.Count,
			Residual: pc.Residual,
			HHH:      pc.HHH,
		}
	}
	q.count("queries.hhh")
	WriteJSON(w, http.StatusOK, map[string]any{
		"n":             n,
		"threshold":     threshold,
		"bits":          h.Bits(),
		"universe_bits": h.UniverseBits(),
		"prefixes":      rows,
	})
}

// Range answers a range-count query (?lo=&hi=, inclusive, decimal or
// 0x-hex, optional &horizon=) against one pinned view. Requires a
// range-capable algorithm (-algo cmh, csh, or gk).
func (q *QueryHandlers) Range(w http.ResponseWriter, r *http.Request) {
	query := r.URL.Query()
	loStr, hiStr := query.Get("lo"), query.Get("hi")
	if loStr == "" || hiStr == "" {
		HTTPError(w, http.StatusBadRequest, "lo and hi parameters required")
		return
	}
	lo, err := parseItem(loStr)
	if err != nil {
		HTTPError(w, http.StatusBadRequest, "lo must be a decimal or 0x-hex uint64")
		return
	}
	hi, err := parseItem(hiStr)
	if err != nil {
		HTTPError(w, http.StatusBadRequest, "hi must be a decimal or 0x-hex uint64")
		return
	}
	if lo > hi {
		HTTPError(w, http.StatusBadRequest, "lo must not exceed hi")
		return
	}
	view := q.View()
	if raw := query.Get("horizon"); raw != "" {
		v, ok := resolveHorizon(w, view, raw)
		if !ok {
			return
		}
		view = v
	}
	rv, ok := capabilitySource(view).(rangeView)
	if !ok {
		HTTPError(w, http.StatusNotFound,
			"the serving algorithm does not answer range queries; run freqd with -algo cmh, csh, or gk")
		return
	}
	est, err := rv.RangeEstimate(uint64(lo), uint64(hi))
	if err != nil {
		HTTPError(w, http.StatusBadRequest, "%v", err)
		return
	}
	q.count("queries.range")
	WriteJSON(w, http.StatusOK, map[string]any{
		"lo": uint64(lo), "hi": uint64(hi), "estimate": est, "n": thresholdN(view),
	})
}

// Quantile answers a value-quantile query (?q= in [0,1], optional
// &horizon=) against one pinned view. Requires a quantile-capable
// algorithm (-algo gk natively, cmh/csh via dyadic prefix sums).
func (q *QueryHandlers) Quantile(w http.ResponseWriter, r *http.Request) {
	query := r.URL.Query()
	qStr := query.Get("q")
	if qStr == "" {
		HTTPError(w, http.StatusBadRequest, "q parameter required")
		return
	}
	quant, err := strconv.ParseFloat(qStr, 64)
	if err != nil || quant < 0 || quant > 1 {
		HTTPError(w, http.StatusBadRequest, "q must be in [0,1]")
		return
	}
	view := q.View()
	if raw := query.Get("horizon"); raw != "" {
		v, ok := resolveHorizon(w, view, raw)
		if !ok {
			return
		}
		view = v
	}
	qv, ok := capabilitySource(view).(quantileView)
	if !ok {
		HTTPError(w, http.StatusNotFound,
			"the serving algorithm does not answer quantile queries; run freqd with -algo gk, cmh, or csh")
		return
	}
	value, err := qv.QuantileQuery(quant)
	if err != nil {
		// The only runtime failure is an empty summary: there is no rank
		// to report yet, which is a missing resource, not a bad request.
		HTTPError(w, http.StatusNotFound, "%v", err)
		return
	}
	q.count("queries.quantile")
	WriteJSON(w, http.StatusOK, map[string]any{
		"q": quant, "value": value, "n": thresholdN(view),
	})
}
