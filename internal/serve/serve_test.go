package serve_test

// End-to-end coverage for the freqd serving layer: a real HTTP server on
// a loopback port, a Zipf stream ingested over the wire (concurrently,
// in binary batches), and /topk scored against internal/exact at the φn
// operating point — recall must be perfect (Space-Saving never
// underestimates) and every reported item's true count must clear the
// threshold minus the summary's n/k error bound.

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"streamfreq"
	"streamfreq/internal/core"
	"streamfreq/internal/exact"
	"streamfreq/internal/metrics"
	"streamfreq/internal/serve"
	"streamfreq/internal/stream"
	"streamfreq/internal/testutil"
	"streamfreq/internal/zipf"
)

type topkResponse struct {
	N         int64 `json:"n"`
	Threshold int64 `json:"threshold"`
	Items     []struct {
		Item  uint64 `json:"item"`
		Count int64  `json:"count"`
		Token string `json:"token"`
	} `json:"items"`
}

func getJSON(t *testing.T, url string, out any) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		body, _ := io.ReadAll(resp.Body)
		t.Fatalf("GET %s: %s: %s", url, resp.Status, body)
	}
	if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
		t.Fatalf("GET %s: decoding: %v", url, err)
	}
}

func post(t *testing.T, url, contentType string, body []byte) *http.Response {
	t.Helper()
	resp, err := http.Post(url, contentType, bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	return resp
}

func postOK(t *testing.T, url, contentType string, body []byte) {
	t.Helper()
	resp := post(t, url, contentType, body)
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		b, _ := io.ReadAll(resp.Body)
		t.Fatalf("POST %s: %s: %s", url, resp.Status, b)
	}
}

func TestFreqdEndToEnd(t *testing.T) {
	const (
		phi     = 0.001
		seed    = 1
		streamN = 200_000
	)
	target := core.NewConcurrent(streamfreq.MustNew("SSH", phi, seed)).
		ServeSnapshots(5 * time.Millisecond)
	srv := serve.NewServer(serve.Options{Target: target, Algo: "SSH"})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	g, err := zipf.NewGenerator(1<<16, 1.1, 0xFEED, true)
	if err != nil {
		t.Fatal(err)
	}
	items := g.Stream(streamN)

	// Concurrent binary ingest over the wire, in chunks, while queries
	// run against whatever snapshot is being served.
	const chunks = 16
	var wg sync.WaitGroup
	share := (len(items) + chunks - 1) / chunks
	for w := 0; w < 2; w++ { // two concurrent clients
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for c := w; c < chunks; c += 2 {
				lo := min(c*share, len(items))
				hi := min(lo+share, len(items))
				if lo >= hi {
					continue
				}
				body := stream.AppendRaw(nil, items[lo:hi])
				postOK(t, ts.URL+"/ingest", "application/octet-stream", body)
				// Interleave reads with ingest: they must never error,
				// whatever snapshot epoch they land on.
				var tr topkResponse
				getJSON(t, ts.URL+fmt.Sprintf("/topk?phi=%g", phi), &tr)
			}
		}(w)
	}
	wg.Wait()

	// Deterministic cutover, then score the report against exact truth.
	postOK(t, ts.URL+"/refresh", "application/json", nil)

	var tr topkResponse
	getJSON(t, ts.URL+fmt.Sprintf("/topk?phi=%g", phi), &tr)
	if tr.N != streamN {
		t.Fatalf("/topk n = %d, want %d", tr.N, streamN)
	}
	threshold := int64(phi * float64(streamN))
	if tr.Threshold != threshold {
		t.Fatalf("/topk threshold = %d, want %d", tr.Threshold, threshold)
	}

	truth := exact.New()
	for _, it := range items {
		truth.Update(it, 1)
	}
	truthMap := metrics.TruthMap(truth.TopK(truth.Distinct()), threshold)
	report := make([]core.ItemCount, len(tr.Items))
	for i, it := range tr.Items {
		report[i] = core.ItemCount{Item: core.Item(it.Item), Count: it.Count}
	}
	acc := metrics.Evaluate(report, truthMap)
	if acc.Recall != 1 {
		t.Fatalf("recall at φn = %v, want perfect (report %d items, truth %d): %s",
			acc.Recall, len(report), len(truthMap), acc)
	}
	// Precision bound: SSH overestimates by at most n/k, so every
	// reported item's true count is at least threshold − n/k.
	k := int(1/phi) + 1
	floor := threshold - int64(streamN/k)
	for _, ic := range report {
		if truth.Estimate(ic.Item) < floor {
			t.Fatalf("reported item %d has true count %d < support floor %d",
				ic.Item, truth.Estimate(ic.Item), floor)
		}
	}

	// Point estimates: SSH never underestimates a tracked heavy item.
	top := truth.TopK(5)
	for _, ic := range top {
		var er struct {
			Item     uint64 `json:"item"`
			Estimate int64  `json:"estimate"`
		}
		getJSON(t, ts.URL+fmt.Sprintf("/estimate?item=%d", uint64(ic.Item)), &er)
		if er.Estimate < ic.Count {
			t.Fatalf("/estimate item %d = %d, below true count %d", ic.Item, er.Estimate, ic.Count)
		}
	}

	// /stats must reflect the full stream and an enabled serving snapshot.
	var st struct {
		Algo     string           `json:"algo"`
		N        int64            `json:"n"`
		Bytes    int              `json:"bytes"`
		Counters map[string]int64 `json:"counters"`
		Snapshot struct {
			Serving   bool  `json:"serving"`
			AsOfN     int64 `json:"as_of_n"`
			AgeMs     int64 `json:"age_ms"`
			Refreshes int64 `json:"refreshes"`
		} `json:"snapshot"`
	}
	getJSON(t, ts.URL+"/stats", &st)
	if st.Algo != "SSH" || st.N != streamN || st.Bytes <= 0 {
		t.Fatalf("/stats = %+v, want SSH summary over %d items", st, streamN)
	}
	if !st.Snapshot.Serving || st.Snapshot.AsOfN != streamN || st.Snapshot.Refreshes < 1 {
		t.Fatalf("/stats snapshot = %+v, want serving view of the full stream", st.Snapshot)
	}
	if st.Counters["ingest.items"] != streamN || st.Counters["queries.topk"] < chunks {
		t.Fatalf("/stats counters = %v, want %d ingested items and ≥%d topk queries",
			st.Counters, streamN, chunks)
	}
}

// TestFreqdTextIngest drives the text ingest path end to end: tokens in,
// token-labeled report out.
func TestFreqdTextIngest(t *testing.T) {
	target := core.NewConcurrent(streamfreq.MustNew("SSH", 0.01, 1)).ServeSnapshots(0)
	srv := serve.NewServer(serve.Options{Target: target})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	text := strings.Repeat("alpha beta alpha gamma alpha beta\n", 50)
	postOK(t, ts.URL+"/ingest", "text/plain", []byte(text))
	// Media types are case-insensitive; a capitalized variant must land
	// on the same decoder (3 more alphas below).
	postOK(t, ts.URL+"/ingest", "Text/Plain; charset=utf-8", []byte("alpha alpha alpha"))

	var er struct {
		Estimate int64 `json:"estimate"`
	}
	getJSON(t, ts.URL+"/estimate?token=alpha", &er)
	if er.Estimate != 153 {
		t.Fatalf("estimate(alpha) = %d, want 153", er.Estimate)
	}

	var tr topkResponse
	getJSON(t, ts.URL+"/topk?phi=0.2", &tr)
	if len(tr.Items) == 0 || tr.Items[0].Token != "alpha" || tr.Items[0].Count != 153 {
		t.Fatalf("/topk = %+v, want alpha×153 first", tr.Items)
	}
}

// TestFreqdStreamFileIngest posts an SFSTRM01 stream file body.
func TestFreqdStreamFileIngest(t *testing.T) {
	target := core.NewConcurrent(exact.New()).ServeSnapshots(0)
	srv := serve.NewServer(serve.Options{Target: target})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	items := []core.Item{7, 7, 7, 9, 9, 42}
	var buf bytes.Buffer
	if err := stream.Write(&buf, "e2e", items); err != nil {
		t.Fatal(err)
	}
	postOK(t, ts.URL+"/ingest", "application/x-sfstream", buf.Bytes())

	var er struct {
		Estimate int64 `json:"estimate"`
	}
	getJSON(t, ts.URL+"/estimate?item=7", &er)
	if er.Estimate != 3 {
		t.Fatalf("estimate(7) = %d, want 3", er.Estimate)
	}
	getJSON(t, ts.URL+"/estimate?item=0x2a", &er)
	if er.Estimate != 1 {
		t.Fatalf("estimate(0x2a) = %d, want 1", er.Estimate)
	}
}

// TestFreqdErrorPaths is the table of wire-level rejections: every bad
// request must come back as a 4xx with a JSON error, never a 500 or a
// hang, and must not corrupt the summary.
func TestFreqdErrorPaths(t *testing.T) {
	target := core.NewConcurrent(exact.New()).ServeSnapshots(0)
	srv := serve.NewServer(serve.Options{Target: target, MaxIngestBytes: 1 << 10})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	cases := []struct {
		name, method, path, contentType string
		body                            []byte
		wantStatus                      int
	}{
		{"ingest GET", http.MethodGet, "/ingest", "", nil, http.StatusMethodNotAllowed},
		{"ingest bad content type", http.MethodPost, "/ingest", "application/json", []byte("{}"), http.StatusUnsupportedMediaType},
		{"ingest torn binary item", http.MethodPost, "/ingest", "application/octet-stream", []byte{1, 2, 3}, http.StatusBadRequest},
		{"ingest bad stream file", http.MethodPost, "/ingest", "application/x-sfstream", []byte("NOTASTREAM"), http.StatusBadRequest},
		{"ingest oversized body", http.MethodPost, "/ingest", "application/octet-stream", make([]byte, 1<<11), http.StatusRequestEntityTooLarge},
		{"topk POST", http.MethodPost, "/topk", "", nil, http.StatusMethodNotAllowed},
		{"topk bad phi", http.MethodGet, "/topk?phi=2", "", nil, http.StatusBadRequest},
		{"topk bad threshold", http.MethodGet, "/topk?threshold=-1", "", nil, http.StatusBadRequest},
		{"topk bad k", http.MethodGet, "/topk?phi=0.1&k=-2", "", nil, http.StatusBadRequest},
		{"estimate no arg", http.MethodGet, "/estimate", "", nil, http.StatusBadRequest},
		{"estimate bad item", http.MethodGet, "/estimate?item=zzz", "", nil, http.StatusBadRequest},
		{"stats POST", http.MethodPost, "/stats", "", nil, http.StatusMethodNotAllowed},
		{"refresh GET", http.MethodGet, "/refresh", "", nil, http.StatusMethodNotAllowed},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			req, err := http.NewRequest(tc.method, ts.URL+tc.path, bytes.NewReader(tc.body))
			if err != nil {
				t.Fatal(err)
			}
			if tc.contentType != "" {
				req.Header.Set("Content-Type", tc.contentType)
			}
			resp, err := http.DefaultClient.Do(req)
			if err != nil {
				t.Fatal(err)
			}
			defer resp.Body.Close()
			if resp.StatusCode != tc.wantStatus {
				b, _ := io.ReadAll(resp.Body)
				t.Fatalf("%s %s: status %d, want %d (%s)", tc.method, tc.path, resp.StatusCode, tc.wantStatus, b)
			}
			var errBody struct {
				Error struct {
					Code    string `json:"code"`
					Message string `json:"message"`
				} `json:"error"`
			}
			if err := json.NewDecoder(resp.Body).Decode(&errBody); err != nil || errBody.Error.Code == "" || errBody.Error.Message == "" {
				t.Fatalf("%s %s: error body not the {\"error\":{\"code\",\"message\"}} envelope (%v)", tc.method, tc.path, err)
			}
		})
	}
}

// TestFreqdGracefulShutdown exercises the ListenAndServe stop path the
// daemon's signal handler drives.
func TestFreqdGracefulShutdown(t *testing.T) {
	target := core.NewConcurrent(exact.New()).ServeSnapshots(0)
	srv := serve.NewServer(serve.Options{Target: target})

	// Reserve a loopback port so the test can observe the server come up
	// (ListenAndServe doesn't report its bound address), then poll /stats
	// until it answers — the shutdown below exercises a genuinely serving
	// server, not a race against its own startup.
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := l.Addr().String()
	l.Close()

	stop := make(chan struct{})
	done := make(chan error, 1)
	go func() { done <- srv.ListenAndServe(addr, stop) }()
	testutil.Eventually(t, 5*time.Second, func() bool {
		resp, err := http.Get("http://" + addr + "/stats")
		if err != nil {
			return false
		}
		resp.Body.Close()
		return resp.StatusCode == http.StatusOK
	}, "server never started serving on %s", addr)
	close(stop)
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("graceful shutdown returned %v", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("server did not shut down")
	}
}

// TestSummaryEndpoint: GET /summary ships a decodable registry blob of
// the node's full state with the position and epoch headers a
// coordinator relies on — and the blob is a consistent snapshot, so
// decoding it and querying locally must agree with the node's own /topk.
func TestSummaryEndpoint(t *testing.T) {
	const epoch = 424242
	target := core.NewConcurrent(streamfreq.MustNew("SSH", 0.01, 1)).ServeSnapshots(0)
	srv := serve.NewServer(serve.Options{Target: target, Algo: "SSH", Epoch: epoch})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	g, err := zipf.NewGenerator(1<<12, 1.2, 99, true)
	if err != nil {
		t.Fatal(err)
	}
	items := g.Stream(50_000)
	postOK(t, ts.URL+"/ingest", "application/octet-stream", stream.AppendRaw(nil, items))

	resp, err := http.Get(ts.URL + "/summary")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET /summary: %s", resp.Status)
	}
	if ct := resp.Header.Get("Content-Type"); ct != serve.SummaryContentType {
		t.Fatalf("Content-Type = %q, want %q", ct, serve.SummaryContentType)
	}
	if a := resp.Header.Get(serve.HeaderAlgo); a != "SSH" {
		t.Fatalf("%s = %q, want SSH", serve.HeaderAlgo, a)
	}
	if e := resp.Header.Get(serve.HeaderEpoch); e != "424242" {
		t.Fatalf("%s = %q, want 424242", serve.HeaderEpoch, e)
	}
	if n := resp.Header.Get(serve.HeaderN); n != fmt.Sprint(len(items)) {
		t.Fatalf("%s = %q, want %d", serve.HeaderN, n, len(items))
	}
	blob, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	decoded, err := streamfreq.Decode(blob)
	if err != nil {
		t.Fatalf("decoding /summary blob: %v", err)
	}
	if decoded.N() != int64(len(items)) {
		t.Fatalf("decoded blob N = %d, want %d", decoded.N(), len(items))
	}

	// The decoded summary answers exactly like the node it was pulled
	// from: same φn report, item for item.
	var tr topkResponse
	getJSON(t, ts.URL+"/topk?phi=0.01", &tr)
	local := decoded.Query(tr.Threshold)
	if len(local) != len(tr.Items) {
		t.Fatalf("decoded blob reports %d items, node reports %d", len(local), len(tr.Items))
	}
	for i, ic := range local {
		if uint64(ic.Item) != tr.Items[i].Item || ic.Count != tr.Items[i].Count {
			t.Fatalf("report[%d]: decoded %+v, node %+v", i, ic, tr.Items[i])
		}
	}

	// Epoch is stable across pulls within one process lifetime.
	resp2, err := http.Get(ts.URL + "/summary")
	if err != nil {
		t.Fatal(err)
	}
	resp2.Body.Close()
	if e := resp2.Header.Get(serve.HeaderEpoch); e != "424242" {
		t.Fatalf("second pull epoch %q, want unchanged 424242", e)
	}

	// Method check mirrors the other GET endpoints.
	pr := post(t, ts.URL+"/summary", "application/json", nil)
	pr.Body.Close()
	if pr.StatusCode != http.StatusMethodNotAllowed {
		t.Fatalf("POST /summary: %s, want 405", pr.Status)
	}
}

// TestSummaryEndpointSharded: a sharded node ships one blob covering all
// shards (Snapshot merges them), so the coordinator never needs to know
// a node's internal shard count.
func TestSummaryEndpointSharded(t *testing.T) {
	target := core.NewSharded(4, func() core.Summary {
		return streamfreq.MustNew("SSL", 0.01, 1)
	}).ServeSnapshots(0)
	srv := serve.NewServer(serve.Options{Target: target, Algo: "SSL"})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	g, err := zipf.NewGenerator(1<<12, 1.2, 100, true)
	if err != nil {
		t.Fatal(err)
	}
	items := g.Stream(40_000)
	postOK(t, ts.URL+"/ingest", "application/octet-stream", stream.AppendRaw(nil, items))

	resp, err := http.Get(ts.URL + "/summary")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	blob, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	decoded, err := streamfreq.Decode(blob)
	if err != nil {
		t.Fatalf("decoding sharded /summary blob: %v", err)
	}
	if decoded.N() != int64(len(items)) || decoded.Name() != "SSL" {
		t.Fatalf("decoded %s with N=%d, want SSL with N=%d", decoded.Name(), decoded.N(), len(items))
	}
}

// TestFreqdPipelinedTarget serves the lock-free ingest plane end to
// end: wire ingest lands through the staging rings, /topk answers over
// the full stream after a refresh, and /stats surfaces the pipeline
// section (claimed vs applied positions, ring bytes).
func TestFreqdPipelinedTarget(t *testing.T) {
	const phi, streamN = 0.001, 100_000
	p := core.NewPipelined(4, func() core.Summary {
		return streamfreq.MustNew("SSH", phi, 1)
	}).ServeSnapshots(5 * time.Millisecond)
	defer p.Close()
	srv := serve.NewServer(serve.Options{Target: p, Algo: "SSH"})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	g, err := zipf.NewGenerator(1<<16, 1.1, 0xFEED, true)
	if err != nil {
		t.Fatal(err)
	}
	items := g.Stream(streamN)
	const chunk = 10_000
	var wg sync.WaitGroup
	for w := 0; w < 2; w++ { // two concurrent ingest clients
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for lo := w * chunk; lo < len(items); lo += 2 * chunk {
				hi := min(lo+chunk, len(items))
				postOK(t, ts.URL+"/ingest", "application/octet-stream", stream.AppendRaw(nil, items[lo:hi]))
			}
		}(w)
	}
	wg.Wait()
	postOK(t, ts.URL+"/refresh", "application/json", nil)

	var tr topkResponse
	getJSON(t, ts.URL+fmt.Sprintf("/topk?phi=%g", phi), &tr)
	if tr.N != streamN {
		t.Fatalf("/topk n = %d, want %d (refresh must barrier every staged batch)", tr.N, streamN)
	}

	var st struct {
		N        int64 `json:"n"`
		Pipeline struct {
			Shards       int   `json:"shards"`
			RingCapacity int   `json:"ring_capacity"`
			ClaimedN     int64 `json:"claimed_n"`
			AppliedN     int64 `json:"applied_n"`
			Staged       int64 `json:"staged"`
			RingBytes    int   `json:"ring_bytes"`
		} `json:"pipeline"`
	}
	getJSON(t, ts.URL+"/stats", &st)
	if st.Pipeline.Shards != 4 || st.Pipeline.RingCapacity != core.DefaultRingCapacity {
		t.Fatalf("/stats pipeline = %+v, want 4 shards at the default ring capacity", st.Pipeline)
	}
	if st.Pipeline.ClaimedN != streamN {
		t.Fatalf("/stats pipeline claimed_n = %d, want %d", st.Pipeline.ClaimedN, streamN)
	}
	if st.Pipeline.AppliedN+st.Pipeline.Staged != st.Pipeline.ClaimedN {
		t.Fatalf("/stats pipeline applied+staged = %d+%d, want claimed %d",
			st.Pipeline.AppliedN, st.Pipeline.Staged, st.Pipeline.ClaimedN)
	}
}
