package serve

import (
	"errors"
	"net/http"
	"strconv"
	"time"

	"streamfreq/internal/core"
	"streamfreq/internal/obs"
	"streamfreq/internal/persist"
	"streamfreq/internal/stream"
)

// The tenant half of the freqd HTTP API: /v1/t/{ns}/... routes served
// against the table from Options.Tenants. Reads reuse QueryHandlers —
// a per-namespace view pinned for the request — so a tenant /topk
// parses and answers exactly like the global one, with the namespace's
// own φ as the default threshold.

// TenantBundleContentType is the media type of the all-namespaces
// summary bundle (GET /v1/tenants/summary) freqmerge pulls from
// tenant-mode nodes.
const TenantBundleContentType = "application/x-freq-tenant-bundle"

// tenantView adapts one namespace to core.ReadView. Reads lock the
// table per call (and reload the namespace if it was evicted); tenant
// summaries hold k counters, so the critical sections are tiny.
type tenantView struct {
	s  *Server
	ns string
}

func (v tenantView) N() int64 {
	info, _ := v.s.tenants.TenantInfo(v.ns)
	return info.N
}

func (v tenantView) Estimate(x core.Item) int64 {
	est, _, _ := v.s.tenants.TenantEstimate(v.ns, x)
	return est
}

func (v tenantView) Query(threshold int64) []core.ItemCount {
	out, _ := v.s.tenants.TenantQuery(v.ns, threshold)
	return out
}

// tenantNS extracts and validates the {ns} path segment. A namespace
// is any non-empty path segment up to persist.MaxNamespaceLen bytes;
// the default namespace "" is reachable only through the legacy
// (un-prefixed) routes, which keeps the two route families disjoint.
func tenantNS(w http.ResponseWriter, r *http.Request) (string, bool) {
	ns := r.PathValue("ns")
	if ns == "" {
		HTTPError(w, http.StatusBadRequest, "empty namespace")
		return "", false
	}
	if len(ns) > persist.MaxNamespaceLen {
		HTTPError(w, http.StatusBadRequest, "namespace exceeds %d bytes", persist.MaxNamespaceLen)
		return "", false
	}
	return ns, true
}

// known404s a read against a namespace that was never created. Reads
// must not instantiate tenants — a typo'd dashboard URL should not
// allocate counter blocks.
func (s *Server) knownTenant(w http.ResponseWriter, ns string) bool {
	if _, ok := s.tenants.TenantInfo(ns); !ok {
		HTTPError(w, http.StatusNotFound, "namespace %q does not exist (it is created on first ingest)", ns)
		return false
	}
	return true
}

// handleTenantIngest is handleIngest scoped to one namespace: same
// Content-Type dispatch, same batching, same backpressure, but items
// land in (and are WAL-tagged with) the namespace.
func (s *Server) handleTenantIngest(w http.ResponseWriter, r *http.Request) {
	ns, ok := tenantNS(w, r)
	if !ok {
		return
	}
	if s.store != nil {
		if err := s.store.Err(); err != nil {
			s.counters.Add("ingest.rejected", 1)
			HTTPError(w, http.StatusServiceUnavailable, "persistence failed, ingest disabled: %v", err)
			return
		}
		if s.maxLag > 0 {
			if lag := s.store.Lag(); lag > s.maxLag {
				s.counters.Add("ingest.shed", 1)
				w.Header().Set("Retry-After", "1")
				HTTPError(w, http.StatusTooManyRequests,
					"WAL lag %d items exceeds the %d-item bound; retry after the log drains", lag, s.maxLag)
				return
			}
		}
	}
	body := http.MaxBytesReader(w, r.Body, s.maxIn)
	src, err := stream.OpenIngest(r.Header.Get("Content-Type"), body, s.maxNames)
	if err != nil {
		s.counters.Add("ingest.rejected", 1)
		if errors.Is(err, stream.ErrUnsupportedMedia) {
			HTTPError(w, http.StatusUnsupportedMediaType, "%v", err)
			return
		}
		HTTPError(w, http.StatusBadRequest, "bad stream file: %v", err)
		return
	}
	// Token spellings intern into the one server-wide table, shared
	// across namespaces: the same token hashes to the same item
	// everywhere, so labels need no per-tenant copies.
	defer func() { s.mergeNames(src.Names()) }()

	buf := make([]core.Item, s.batch)
	var ingested, tenantN int64
	var applyTotal time.Duration
	for {
		n := src.NextBatch(buf)
		if n == 0 {
			break
		}
		t0 := time.Now()
		tn, _, err := s.tenants.IngestBatch(ns, buf[:n])
		d := time.Since(t0)
		applyTotal += d
		s.batchH.Observe(int64(n))
		s.applyH.Observe(int64(d))
		if err != nil {
			HTTPError(w, http.StatusBadRequest, "ingest into %q failed after %d items: %v", ns, ingested, err)
			return
		}
		tenantN = tn
		ingested += int64(n)
	}
	s.counters.Add("ingest.requests", 1)
	s.counters.Add("ingest.items", ingested)
	s.counters.Add("ingest.tenant_items", ingested)
	obs.AddStage(r.Context(), "apply", applyTotal)
	obs.Annotate(r.Context(), "tenant", ns)
	obs.Annotate(r.Context(), "items", ingested)
	if err := src.Err(); err != nil {
		var tooBig *http.MaxBytesError
		if errors.As(err, &tooBig) {
			HTTPError(w, http.StatusRequestEntityTooLarge,
				"body exceeds %d-byte ingest limit (ingested %d items); split into smaller requests", tooBig.Limit, ingested)
			return
		}
		HTTPError(w, http.StatusBadRequest, "body truncated or corrupt after %d items: %v", ingested, err)
		return
	}
	w.Header().Set(HeaderEpoch, strconv.FormatUint(s.epoch, 10))
	WriteJSON(w, http.StatusOK, map[string]int64{
		"ingested": ingested,
		"n":        tenantN,
	})
}

// handleTenantTopK answers /v1/t/{ns}/topk with the namespace's φ as
// the default threshold.
func (s *Server) handleTenantTopK(w http.ResponseWriter, r *http.Request) {
	ns, ok := tenantNS(w, r)
	if !ok || !s.knownTenant(w, ns) {
		return
	}
	info, _ := s.tenants.TenantInfo(ns)
	q := QueryHandlers{
		View:       func() core.ReadView { return tenantView{s: s, ns: ns} },
		Name:       s.lookupName,
		Counters:   s.counters,
		DefaultPhi: info.Phi,
	}
	q.TopK(w, r)
}

// handleTenantEstimate answers /v1/t/{ns}/estimate.
func (s *Server) handleTenantEstimate(w http.ResponseWriter, r *http.Request) {
	ns, ok := tenantNS(w, r)
	if !ok || !s.knownTenant(w, ns) {
		return
	}
	q := QueryHandlers{
		View:     func() core.ReadView { return tenantView{s: s, ns: ns} },
		Name:     s.lookupName,
		Counters: s.counters,
	}
	q.Estimate(w, r)
}

// handleTenantStats reports one namespace's metadata.
func (s *Server) handleTenantStats(w http.ResponseWriter, r *http.Request) {
	ns, ok := tenantNS(w, r)
	if !ok {
		return
	}
	info, exists := s.tenants.TenantInfo(ns)
	if !exists {
		HTTPError(w, http.StatusNotFound, "namespace %q does not exist (it is created on first ingest)", ns)
		return
	}
	WriteJSON(w, http.StatusOK, info)
}

// handleTenants lists namespaces (?limit= caps the report) plus the
// table-level stats.
func (s *Server) handleTenants(w http.ResponseWriter, r *http.Request) {
	limit := 0
	if v := r.URL.Query().Get("limit"); v != "" {
		n, err := strconv.Atoi(v)
		if err != nil || n < 0 {
			HTTPError(w, http.StatusBadRequest, "limit must be a non-negative integer")
			return
		}
		limit = n
	}
	st := s.tenants.TableStats()
	WriteJSON(w, http.StatusOK, map[string]any{
		"stats":      st,
		"namespaces": s.tenants.Namespaces(limit),
	})
}

// handleTenantBundle ships every namespace's encoded summary in one
// frame — the tenant-mode analogue of GET /summary, pulled by
// freqmerge for per-namespace cluster merges.
func (s *Server) handleTenantBundle(w http.ResponseWriter, r *http.Request) {
	blob, err := s.tenants.EncodeBundle()
	if err != nil {
		HTTPError(w, http.StatusInternalServerError, "encoding tenant bundle: %v", err)
		return
	}
	s.counters.Add("summary.bundle_pulls", 1)
	h := w.Header()
	h.Set("Content-Type", TenantBundleContentType)
	h.Set(HeaderAlgo, s.algo)
	h.Set(HeaderN, strconv.FormatInt(s.tenants.N(), 10))
	h.Set(HeaderEpoch, strconv.FormatUint(s.epoch, 10))
	w.WriteHeader(http.StatusOK)
	_, _ = w.Write(blob)
}
