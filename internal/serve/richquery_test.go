package serve_test

// Coverage for the rich query surface: /v1/hhh, /v1/range, /v1/quantile,
// and the ?horizon= narrowing on /v1/topk — capability dispatch against
// hierarchy (CMH), quantile (GK), multi-resolution (MultiRes), and
// deliberately-incapable (SSH) targets, over real loopback HTTP.

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"streamfreq/internal/core"
	"streamfreq/internal/counters"
	"streamfreq/internal/quantile"
	"streamfreq/internal/serve"
	"streamfreq/internal/sketches"
	"streamfreq/internal/window"
)

func richServer(t *testing.T, sum core.Summary, algo string) *httptest.Server {
	t.Helper()
	// maxStale 0: every read re-clones after a mutation, so queries see
	// exactly what the test ingested — and the serving view is the
	// concrete summary clone capability dispatch needs.
	srv := serve.NewServer(serve.Options{Target: core.NewConcurrent(sum).ServeSnapshots(0), Algo: algo})
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(ts.Close)
	return ts
}

// getError fetches url expecting the JSON error envelope; it returns the
// status and the machine-readable code.
func getError(t *testing.T, url string) (int, string) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var body struct {
		Error struct {
			Code    string `json:"code"`
			Message string `json:"message"`
		} `json:"error"`
	}
	raw, _ := io.ReadAll(resp.Body)
	if err := json.Unmarshal(raw, &body); err != nil || body.Error.Code == "" {
		t.Fatalf("GET %s: status %d with no error envelope: %s", url, resp.StatusCode, raw)
	}
	return resp.StatusCode, body.Error.Code
}

func newTestHierarchy(t *testing.T) *sketches.Hierarchical {
	t.Helper()
	h, err := sketches.NewCountMinHierarchy(sketches.HierarchyConfig{
		Depth: 4, Width: 4096, Bits: 8, UniverseBits: 16, Seed: 11,
	})
	if err != nil {
		t.Fatal(err)
	}
	return h
}

type hhhResponse struct {
	N            int64 `json:"n"`
	Threshold    int64 `json:"threshold"`
	Bits         uint  `json:"bits"`
	UniverseBits uint  `json:"universe_bits"`
	Prefixes     []struct {
		Prefix   uint64 `json:"prefix"`
		Level    int    `json:"level"`
		Count    int64  `json:"count"`
		Residual int64  `json:"residual"`
		HHH      bool   `json:"hhh"`
	} `json:"prefixes"`
}

func TestServeHHH(t *testing.T) {
	h := newTestHierarchy(t)
	// One prefix explained by a single heavy child, one heavy only in
	// aggregate — the two HHH shapes the endpoint must distinguish.
	h.Update(core.Item(0x0101), 5000)
	for c := uint64(0); c < 256; c++ {
		h.Update(core.Item(0x0200|c), 40)
	}
	ts := richServer(t, h, "CMH")

	var out hhhResponse
	getJSON(t, ts.URL+"/v1/hhh?threshold=1000", &out)
	if out.N != 5000+256*40 || out.Threshold != 1000 {
		t.Fatalf("envelope n=%d threshold=%d", out.N, out.Threshold)
	}
	if out.Bits != 8 || out.UniverseBits != 16 {
		t.Fatalf("hierarchy geometry bits=%d universe=%d", out.Bits, out.UniverseBits)
	}
	byKey := map[[2]uint64]bool{} // (level, prefix) -> hhh flag
	for _, p := range out.Prefixes {
		byKey[[2]uint64{uint64(p.Level), p.Prefix}] = p.HHH
	}
	if hhh, ok := byKey[[2]uint64{1, 0x02}]; !ok || !hhh {
		t.Errorf("prefix 0x02 level 1: present=%v hhh=%v, want a spread-traffic HHH", ok, hhh)
	}
	if hhh, ok := byKey[[2]uint64{1, 0x01}]; !ok || hhh {
		t.Errorf("prefix 0x01 level 1: present=%v hhh=%v, want reported but discounted", ok, hhh)
	}
	if hhh, ok := byKey[[2]uint64{0, 0x0101}]; !ok || !hhh {
		t.Errorf("item 0x0101 level 0: present=%v hhh=%v, want the heavy leaf", ok, hhh)
	}

	// φ-style thresholds scale against n like /topk.
	var phiOut hhhResponse
	getJSON(t, ts.URL+"/v1/hhh?phi=0.1", &phiOut)
	if want := int64(0.1 * float64(out.N)); phiOut.Threshold != want {
		t.Errorf("phi threshold = %d, want %d", phiOut.Threshold, want)
	}

	for _, bad := range []string{"?phi=2", "?phi=abc", "?threshold=0", "?threshold=-5"} {
		if status, code := getError(t, ts.URL+"/v1/hhh"+bad); status != http.StatusBadRequest || code != "bad_request" {
			t.Errorf("hhh%s: got %d/%s, want 400/bad_request", bad, status, code)
		}
	}
}

func TestServeRange(t *testing.T) {
	// Uniform values over [0,1000): exact range sums are trivial.
	items := make([]core.Item, 0, 20000)
	for rep := 0; rep < 20; rep++ {
		for v := 0; v < 1000; v++ {
			items = append(items, core.Item(v))
		}
	}
	for name, sum := range map[string]core.Summary{
		"GK":  quantile.New(0.01),
		"CMH": newTestHierarchy(t),
	} {
		t.Run(name, func(t *testing.T) {
			core.UpdateAll(sum, items)
			ts := richServer(t, sum, name)
			var out struct {
				Lo, Hi   uint64
				Estimate int64
				N        int64
			}
			getJSON(t, ts.URL+"/v1/range?lo=0&hi=499", &out)
			want, slack := int64(10000), int64(0.03*float64(len(items)))+2
			if out.Estimate < want-slack || out.Estimate > want+slack {
				t.Errorf("range [0,499] = %d, want %d ± %d", out.Estimate, want, slack)
			}
			if out.N != int64(len(items)) {
				t.Errorf("n = %d, want %d", out.N, len(items))
			}
			// Hex parsing follows /estimate's item syntax.
			getJSON(t, ts.URL+"/v1/range?lo=0x0&hi=0x1f3", &out)
			if out.Hi != 499 {
				t.Errorf("hex hi parsed as %d, want 499", out.Hi)
			}
			for _, bad := range []string{"?lo=5", "?hi=5", "?lo=9&hi=5", "?lo=x&hi=5"} {
				if status, code := getError(t, ts.URL+"/v1/range"+bad); status != http.StatusBadRequest || code != "bad_request" {
					t.Errorf("range%s: got %d/%s, want 400/bad_request", bad, status, code)
				}
			}
		})
	}
}

func TestServeQuantile(t *testing.T) {
	g := quantile.New(0.01)
	items := make([]core.Item, 0, 20000)
	for rep := 0; rep < 20; rep++ {
		for v := 0; v < 1000; v++ {
			items = append(items, core.Item(v))
		}
	}
	core.UpdateAll(g, items)
	ts := richServer(t, g, "GK")
	var out struct {
		Q     float64
		Value uint64
		N     int64
	}
	getJSON(t, ts.URL+"/v1/quantile?q=0.5", &out)
	if out.Value < 480 || out.Value > 520 {
		t.Errorf("median of uniform [0,1000) = %d, want ≈500", out.Value)
	}
	if out.N != int64(len(items)) {
		t.Errorf("n = %d, want %d", out.N, len(items))
	}
	for _, bad := range []string{"", "?q=1.5", "?q=-0.1", "?q=abc"} {
		if status, code := getError(t, ts.URL+"/v1/quantile"+bad); status != http.StatusBadRequest || code != "bad_request" {
			t.Errorf("quantile%s: got %d/%s, want 400/bad_request", bad, status, code)
		}
	}
	// An empty summary has no ranks to report — a missing resource.
	empty := richServer(t, quantile.New(0.01), "GK")
	if status, code := getError(t, empty.URL+"/v1/quantile?q=0.5"); status != http.StatusNotFound || code != "not_found" {
		t.Errorf("empty quantile: got %d/%s, want 404/not_found", status, code)
	}
}

// TestServeRichQueryUnsupported pins the capability contract: the routes
// exist on every server, and an algorithm that cannot answer gets the
// 404 envelope, not a missing route.
func TestServeRichQueryUnsupported(t *testing.T) {
	sum := counters.NewSpaceSavingHeap(64)
	sum.Update(1, 10)
	ts := richServer(t, sum, "SSH")
	for _, path := range []string{
		"/v1/hhh?threshold=1",
		"/v1/range?lo=0&hi=5",
		"/v1/quantile?q=0.5",
		"/v1/topk?horizon=1m",
	} {
		status, code := getError(t, ts.URL+path)
		if status != http.StatusNotFound || code != "not_found" {
			t.Errorf("%s on SSH: got %d/%s, want 404/not_found", path, status, code)
		}
	}
}

type manualClock struct{ t time.Time }

func (c *manualClock) now() time.Time { return c.t }

func newMultiResTarget(t *testing.T, clk *manualClock, factory func() core.Summary) *window.MultiRes {
	t.Helper()
	m, err := window.NewMultiRes(window.MultiResConfig{
		Horizons: []time.Duration{time.Minute, time.Hour},
		Blocks:   4,
		Factory:  factory,
		Now:      clk.now,
	})
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func TestServeTopKHorizon(t *testing.T) {
	clk := &manualClock{t: time.Unix(1_000_000, 0)}
	m := newMultiResTarget(t, clk, func() core.Summary { return counters.NewSpaceSavingHeap(64) })
	m.UpdateBatch([]core.Item{1, 1, 1, 2})
	clk.t = clk.t.Add(5 * time.Minute)
	m.UpdateBatch([]core.Item{7, 7, 8})
	ts := richServer(t, m, "MR-SSH")

	var short topkResponse
	getJSON(t, ts.URL+"/v1/topk?horizon=1m&threshold=1", &short)
	if short.N != 3 {
		t.Fatalf("1m horizon n = %d, want 3", short.N)
	}
	seen := map[uint64]bool{}
	for _, it := range short.Items {
		seen[it.Item] = true
	}
	if !seen[7] || !seen[8] || seen[1] {
		t.Fatalf("1m horizon items = %v, want recent traffic only", seen)
	}
	var long topkResponse
	getJSON(t, ts.URL+"/v1/topk?horizon=1h&threshold=1", &long)
	if long.N != 7 {
		t.Fatalf("1h horizon n = %d, want 7", long.N)
	}
	// φ thresholds scale against the horizon's event count, not the
	// lifetime stream: φ=0.4 of 3 recent events is threshold 1.
	var phi topkResponse
	getJSON(t, ts.URL+"/v1/topk?horizon=1m&phi=0.4", &phi)
	if phi.Threshold != 1 {
		t.Fatalf("1m φ=0.4 threshold = %d, want 1 (denominator must be horizon n)", phi.Threshold)
	}
	if status, code := getError(t, ts.URL+"/v1/topk?horizon=2h"); status != http.StatusBadRequest || code != "bad_request" {
		t.Errorf("unconfigured horizon: got %d/%s, want 400/bad_request", status, code)
	}
	if status, _ := getError(t, ts.URL+"/v1/topk?horizon=soon"); status != http.StatusBadRequest {
		t.Errorf("malformed horizon: got %d, want 400", status)
	}
}

// TestServeHHHOverHorizon pins the composition the tentpole names: a
// MultiRes of hierarchy buckets answers prefix queries scoped to a
// wall-clock horizon, through the horizon view's exposed summary.
func TestServeHHHOverHorizon(t *testing.T) {
	clk := &manualClock{t: time.Unix(2_000_000, 0)}
	m := newMultiResTarget(t, clk, func() core.Summary {
		h, err := sketches.NewCountMinHierarchy(sketches.HierarchyConfig{
			Depth: 4, Width: 2048, Bits: 8, UniverseBits: 16, Seed: 7,
		})
		if err != nil {
			panic(err)
		}
		return h
	})
	m.Update(core.Item(0x0101), 500) // old traffic
	clk.t = clk.t.Add(10 * time.Minute)
	m.Update(core.Item(0x0202), 300) // recent traffic
	ts := richServer(t, m, "MR-CMH")

	var out hhhResponse
	getJSON(t, ts.URL+fmt.Sprintf("/v1/hhh?horizon=1m&threshold=%d", 100), &out)
	if out.N != 300 {
		t.Fatalf("1m hhh n = %d, want 300", out.N)
	}
	sawRecent, sawOld := false, false
	for _, p := range out.Prefixes {
		if p.Level == 0 && p.Prefix == 0x0202 {
			sawRecent = true
		}
		if p.Level == 0 && p.Prefix == 0x0101 {
			sawOld = true
		}
	}
	if !sawRecent || sawOld {
		t.Fatalf("1m hhh recent=%v old=%v, want only recent prefixes", sawRecent, sawOld)
	}
	var all hhhResponse
	getJSON(t, ts.URL+"/v1/hhh?horizon=1h&threshold=100", &all)
	if all.N != 800 {
		t.Fatalf("1h hhh n = %d, want 800", all.N)
	}
}
