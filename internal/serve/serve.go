// Package serve implements the freqd HTTP serving layer: continuous
// stream ingest and frequent-items queries over one summary, wired so
// the two workloads never fight — ingest goes through the batched
// UpdateBatch path (one lock per batch), queries are answered from the
// wrapper's epoch snapshots (never taking the ingest lock; see
// core.Snapshotter and Concurrent.ServeSnapshots).
//
// Endpoints:
//
//	POST /ingest    body = items; Content-Type selects the decoder:
//	                  application/octet-stream  bare little-endian uint64s
//	                  text/plain                whitespace-separated tokens
//	                                            (hashed via core.HashString)
//	                  application/x-sfstream    an SFSTRM01 stream file
//	GET  /topk      ?phi=0.001 (threshold φ·N — or φ·W when the target
//	                serves a sliding window) or ?threshold=123; &k= caps
//	GET  /estimate  ?item=123 | ?item=0x7b | ?token=foo
//	GET  /summary   the summary's registry Encode blob (a fresh snapshot),
//	                with X-Freq-N / X-Freq-Epoch / X-Freq-Algo headers —
//	                what a freqmerge coordinator pulls and merges
//	GET  /stats     stream length, footprint, snapshot age, traffic
//	                meters, and — when persistence is on — WAL and
//	                checkpoint state
//	POST /refresh   force a fresh serving snapshot (deterministic cutover)
//	POST /checkpoint  write a durable checkpoint now and truncate the WAL
//
// With a persist.Store attached (Options.Store), ingest is write-ahead
// logged by the target wrapper itself; the server's role is to stop
// acknowledging writes once the log has failed (503 — accepting updates
// it cannot make durable would silently change the crash contract), to
// shed load with 429 + Retry-After once the unsynced WAL lag exceeds
// Options.MaxLag (backpressure before the staging cap makes appenders
// pay the disk inline), and to expose the checkpoint control and
// observability surface.
//
// The package is the testable core of cmd/freqd: the command adds flags,
// listening, signals, recovery, and the checkpoint timer around
// NewServer/Handler.
package serve

import (
	"context"
	"errors"
	"net/http"
	"strconv"
	"sync"
	"time"

	"streamfreq/internal/core"
	"streamfreq/internal/obs"
	"streamfreq/internal/persist"
	"streamfreq/internal/stream"
	"streamfreq/internal/tenant"
	"streamfreq/internal/window"
)

// Target is what the server serves: a summary that is safe for
// concurrent use and ingests batches. core.Concurrent and core.Sharded
// (with ServeSnapshots enabled for lock-free reads) are the intended
// implementations.
type Target interface {
	core.Summary
	core.BatchUpdater
}

// snapshotServer is the optional snapshot-control surface of the
// concurrency wrappers; /stats and /refresh use it when present.
type snapshotServer interface {
	SnapshotStats() core.SnapshotStats
	RefreshSnapshot() core.ReadView
}

// viewServer is the optional pinned-epoch read surface of the
// concurrency wrappers. Query handlers pin one view per request so the
// n/threshold/report triple is internally consistent — issuing N and
// Query as separate wrapper calls could straddle a snapshot refresh.
type viewServer interface {
	ServingView() core.ReadView
}

// windowStatser is the observability surface of a windowed serving view
// (window.Windowed and its snapshots); /stats reports it when present.
type windowStatser interface {
	WindowStats() window.Stats
}

// pipelineStatser is the observability surface of the pipelined ingest
// plane (core.Pipelined); /stats reports the claimed/applied positions
// and staging footprint when present.
type pipelineStatser interface {
	PipelineStats() core.PipelineStats
}

// view returns the read state for one request: the target's current
// serving epoch when it has one, else the target itself (any Summary
// satisfies ReadView; without snapshot serving, reads lock per call and
// the request is only as consistent as interleaved writers allow, which
// is the pre-snapshot behaviour).
func (s *Server) view() core.ReadView {
	if vs, ok := s.target.(viewServer); ok {
		if v := vs.ServingView(); v != nil {
			return v
		}
	}
	return s.target
}

// Options configures a Server.
type Options struct {
	// Target is the serving summary (required).
	Target Target
	// Algo is the algorithm label reported by /stats (defaults to
	// Target.Name()).
	Algo string
	// IngestBatch is the ingest batch length (defaults to
	// core.DefaultBatchSize).
	IngestBatch int
	// MaxIngestBytes bounds one /ingest request body (defaults to 64 MiB).
	MaxIngestBytes int64
	// MaxTokenNames caps the item→token spelling table text ingest
	// accumulates for /topk labels (defaults to 65536). The summaries are
	// O(counters) however long the stream runs; the label table must be
	// bounded too, so tokens first seen after the cap go unlabeled —
	// heavy hitters are overwhelmingly already present by then.
	MaxTokenNames int
	// Store, when set, is the durability layer the Target is already
	// wired to (Recover + PersistTo happened at startup): the server
	// exposes POST /checkpoint and the WAL/checkpoint stats, and fails
	// ingest once the store has latched a failure. The Target must
	// implement persist.Target.
	Store *persist.Store
	// MaxLag, when positive (and Store is set), is the write-ahead
	// log's backpressure bound in items: once the acknowledged-but-not-
	// yet-durable lag (WALEndN − DurableN) exceeds it, /ingest sheds
	// load with 429 + Retry-After instead of acknowledging writes the
	// disk is visibly behind on — surfacing the pressure to clients
	// *before* the staging cap makes appenders pay the disk inline.
	// 0 disables shedding (the staging cap remains the only brake).
	MaxLag int64
	// Epoch identifies this process lifetime on GET /summary; 0 (the
	// default) draws one from the clock at startup. A coordinator uses
	// epoch changes to detect node restarts, so an explicit value is
	// only for tests that need determinism.
	Epoch uint64
	// Tenants, when set, is the multi-tenant table behind Target (the
	// table itself, or wrapped): the /v1/t/{ns}/... and /v1/tenants
	// routes are served against it, and /stats grows a "tenants"
	// section. Target keeps answering the un-namespaced routes through
	// the table's default namespace.
	Tenants *tenant.Table
	// Obs is the daemon's observability plane: the registry behind
	// GET /v1/metrics, the structured logger, and the slow-query
	// threshold. Defaults to obs.Discard (working registry, silent
	// logger), so libraries and tests need not build one.
	Obs *obs.Obs
}

// Server is the freqd HTTP serving state: the target summary, the token
// spelling table for text ingest, and traffic meters.
type Server struct {
	target   Target
	algo     string
	batch    int
	maxIn    int64
	maxNames int
	store    *persist.Store
	maxLag   int64
	durable  persist.Target // target as persist.Target; nil without a store
	tenants  *tenant.Table
	obs      *obs.Obs
	counters *obs.Set // legacy dotted-key counters, mirrored as freq_*_total
	batchH   *obs.Histogram
	applyH   *obs.Histogram
	start    time.Time
	epoch    uint64
	queries  QueryHandlers

	// names maps hashed items back to token spellings for text-mode
	// streams, so /topk can label its report. Each text ingest builds a
	// private map (inside its TokenSource) and mergeNames folds it in
	// under mu.
	mu    sync.Mutex
	names map[core.Item]string
}

// NewServer returns a Server over opts.Target.
func NewServer(opts Options) *Server {
	if opts.Target == nil {
		panic("serve: Options.Target is required")
	}
	if opts.Algo == "" {
		opts.Algo = opts.Target.Name()
	}
	if opts.IngestBatch <= 0 {
		opts.IngestBatch = core.DefaultBatchSize
	}
	if opts.MaxIngestBytes <= 0 {
		opts.MaxIngestBytes = 64 << 20
	}
	if opts.MaxTokenNames <= 0 {
		opts.MaxTokenNames = 1 << 16
	}
	if opts.Epoch == 0 {
		opts.Epoch = uint64(time.Now().UnixNano())
	}
	if opts.Obs == nil {
		opts.Obs = obs.Discard("freqd")
	}
	s := &Server{
		target:   opts.Target,
		algo:     opts.Algo,
		batch:    opts.IngestBatch,
		maxIn:    opts.MaxIngestBytes,
		maxNames: opts.MaxTokenNames,
		store:    opts.Store,
		maxLag:   opts.MaxLag,
		tenants:  opts.Tenants,
		obs:      opts.Obs,
		counters: obs.NewSet(opts.Obs.Reg, "freq"),
		start:    time.Now(),
		epoch:    opts.Epoch,
		names:    make(map[core.Item]string),
	}
	s.queries = QueryHandlers{View: s.view, Name: s.lookupName, Counters: s.counters}
	if opts.Store != nil {
		d, ok := opts.Target.(persist.Target)
		if !ok {
			panic("serve: Options.Store set but Target does not implement persist.Target")
		}
		s.durable = d
	}
	s.bindMetrics()
	return s
}

// bindMetrics registers the node's collector series: instruments the
// ingest path writes, plus scrape-time funcs reading the stats surfaces
// the target actually has (snapshot, window, pipeline, WAL, tenants).
// Everything here mirrors a /stats field — /stats stays the
// human-readable view, /v1/metrics the scrapeable one.
func (s *Server) bindMetrics() {
	reg := s.obs.Reg
	s.batchH = reg.Histogram("freq_ingest_batch_items",
		"Items per applied ingest batch.", obs.SizeOpts())
	s.applyH = reg.Histogram("freq_ingest_apply_seconds",
		"UpdateBatch apply latency per ingest batch.", obs.LatencyOpts())
	algoLabel := obs.Label{Key: "algo", Value: s.algo}
	reg.GaugeFunc("freq_build_info", "Constant 1, labeled with the serving algorithm.",
		func() float64 { return 1 }, algoLabel)
	reg.GaugeFunc("freq_uptime_seconds", "Seconds since process start.",
		func() float64 { return time.Since(s.start).Seconds() })
	reg.GaugeFunc("freq_stream_n", "Live stream position (items ingested).",
		func() float64 {
			if ln, ok := s.target.(interface{ LiveN() int64 }); ok {
				return float64(ln.LiveN())
			}
			return float64(s.target.N())
		})
	reg.GaugeFunc("freq_summary_bytes", "Summary footprint in bytes.",
		func() float64 { return float64(s.target.Bytes()) })
	if ss, ok := s.target.(snapshotServer); ok {
		reg.GaugeFunc("freq_snapshot_age_seconds", "Age of the serving snapshot.",
			func() float64 { return ss.SnapshotStats().Age.Seconds() })
		reg.GaugeFunc("freq_snapshot_as_of_n", "Stream position of the serving snapshot.",
			func() float64 { return float64(ss.SnapshotStats().AsOfN) })
		reg.CounterFunc("freq_snapshot_refreshes_total", "Serving snapshot refreshes.",
			func() float64 { return float64(ss.SnapshotStats().Refreshes) })
	}
	if ps, ok := s.target.(pipelineStatser); ok {
		reg.GaugeFunc("freq_pipeline_staged_items", "Acknowledged-but-unapplied items staged in the ingest rings (drainer lag).",
			func() float64 { st := ps.PipelineStats(); return float64(st.ClaimedN - st.AppliedN) })
		reg.GaugeFunc("freq_pipeline_ring_bytes", "Staging ring footprint in bytes.",
			func() float64 { return float64(ps.PipelineStats().RingBytes) })
		reg.GaugeFunc("freq_pipeline_shards", "Pipelined ingest shard count.",
			func() float64 { return float64(ps.PipelineStats().Shards) })
		reg.GaugeFunc("freq_pipeline_ring_occupancy", "In-flight batches across staging rings (claimed-unreleased slots).",
			func() float64 { return float64(ps.PipelineStats().RingOccupancy) })
		reg.CounterFunc("freq_pipeline_claimed_items_total", "Items claimed into staging rings.",
			func() float64 { return float64(ps.PipelineStats().ClaimedN) })
		reg.CounterFunc("freq_pipeline_applied_items_total", "Items applied by drainers.",
			func() float64 { return float64(ps.PipelineStats().AppliedN) })
	}
	if ws, ok := s.view().(windowStatser); ok {
		reg.GaugeFunc("freq_window_n", "Items inside the sliding window.",
			func() float64 { return float64(ws.WindowStats().WindowN) })
		reg.GaugeFunc("freq_window_live", "Live (unexpired) items tracked by the window.",
			func() float64 { return float64(ws.WindowStats().Live) })
		reg.GaugeFunc("freq_window_slack", "Certified overestimate slack of the window.",
			func() float64 { return float64(ws.WindowStats().Slack) })
	}
	if s.tenants != nil {
		reg.GaugeFunc("freq_tenants", "Namespaces known to the table.",
			func() float64 { return float64(s.tenants.TableStats().Tenants) })
		reg.GaugeFunc("freq_tenants_resident", "Namespaces with resident (decoded) summaries.",
			func() float64 { return float64(s.tenants.TableStats().Resident) })
		reg.GaugeFunc("freq_tenants_blob_bytes", "Encoded bytes of evicted namespace summaries.",
			func() float64 { return float64(s.tenants.TableStats().BlobBytes) })
		reg.CounterFunc("freq_tenants_created_total", "Namespaces created.",
			func() float64 { return float64(s.tenants.TableStats().Created) })
		reg.CounterFunc("freq_tenants_evictions_total", "Namespace summary evictions.",
			func() float64 { return float64(s.tenants.TableStats().Evictions) })
		reg.CounterFunc("freq_tenants_reloads_total", "Namespace summary reloads after eviction.",
			func() float64 { return float64(s.tenants.TableStats().Reloads) })
		reg.GaugeFunc("freq_tenants_slab_bytes", "Slab arena footprint backing tenant counters.",
			func() float64 { return float64(s.tenants.TableStats().Slab.ChunkBytes) })
		reg.GaugeFunc("freq_tenants_slab_live_blocks", "Slab blocks handed out and not released.",
			func() float64 { return float64(s.tenants.TableStats().Slab.LiveBlocks) })
	}
	if s.store != nil {
		s.store.Instrument(reg)
		reg.GaugeFunc("freq_wal_max_lag", "Configured WAL shed bound in items (0 = unbounded).",
			func() float64 { return float64(s.maxLag) })
	}
}

// Handler returns the HTTP API mux: the /v1 surface with the
// pre-versioning paths as aliases, plus the tenant routes when the
// target is a tenant table.
func (s *Server) Handler() http.Handler { return s.API().Handler() }

// API returns the node's assembled route set. Exposed (rather than only
// the opaque Handler) so the docs test can diff the README API-reference
// table against the live mux.
func (s *Server) API() *API {
	api := NewAPI(s.obs)
	api.Route("POST", "/ingest", s.handleIngest, "/ingest")
	api.Route("GET", "/topk", s.queries.TopK, "/topk")
	api.Route("GET", "/estimate", s.queries.Estimate, "/estimate")
	// The rich query surface is /v1-only (no legacy aliases — it never
	// existed pre-versioning) and always registered: capability, not
	// configuration, decides whether a given algo answers.
	api.Route("GET", "/hhh", s.queries.HHH)
	api.Route("GET", "/range", s.queries.Range)
	api.Route("GET", "/quantile", s.queries.Quantile)
	api.Route("GET", "/summary", s.handleSummary, "/summary")
	api.Route("GET", "/stats", s.handleStats, "/stats")
	api.Route("POST", "/refresh", s.handleRefresh, "/refresh")
	api.Route("POST", "/checkpoint", s.handleCheckpoint, "/checkpoint")
	if s.tenants != nil {
		api.Route("POST", "/t/{ns}/ingest", s.handleTenantIngest)
		api.Route("GET", "/t/{ns}/topk", s.handleTenantTopK)
		api.Route("GET", "/t/{ns}/estimate", s.handleTenantEstimate)
		api.Route("GET", "/t/{ns}/stats", s.handleTenantStats)
		api.Route("GET", "/tenants", s.handleTenants)
		api.Route("GET", "/tenants/summary", s.handleTenantBundle)
	}
	return api
}

func (s *Server) mergeNames(names map[core.Item]string) {
	if len(names) == 0 {
		return
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	for it, tok := range names {
		if len(s.names) >= s.maxNames {
			break // label table is full; new tokens go unlabeled
		}
		if _, ok := s.names[it]; !ok {
			s.names[it] = tok
		}
	}
}

func (s *Server) lookupName(it core.Item) string {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.names[it]
}

// handleIngest streams the request body into the summary in bounded
// batches through the target's UpdateBatch path.
func (s *Server) handleIngest(w http.ResponseWriter, r *http.Request) {
	if s.store != nil {
		if err := s.store.Err(); err != nil {
			// The WAL has failed: accepting this write would acknowledge
			// data that cannot survive a restart. Serve reads, refuse
			// writes, page the operator.
			s.counters.Add("ingest.rejected", 1)
			HTTPError(w, http.StatusServiceUnavailable, "persistence failed, ingest disabled: %v", err)
			return
		}
		if s.maxLag > 0 {
			if lag := s.store.Lag(); lag > s.maxLag {
				// The disk is behind by more than the operator's bound:
				// shed the write with an explicit retry signal while the
				// log drains, instead of acknowledging into a growing
				// unsynced tail. Reads keep serving throughout.
				s.counters.Add("ingest.shed", 1)
				w.Header().Set("Retry-After", "1")
				HTTPError(w, http.StatusTooManyRequests,
					"WAL lag %d items exceeds the %d-item bound; retry after the log drains", lag, s.maxLag)
				return
			}
		}
	}
	body := http.MaxBytesReader(w, r.Body, s.maxIn)
	// Capture at most the server's label budget per request, so one
	// high-cardinality text body cannot allocate past it transiently.
	src, err := stream.OpenIngest(r.Header.Get("Content-Type"), body, s.maxNames)
	if err != nil {
		s.counters.Add("ingest.rejected", 1)
		if errors.Is(err, stream.ErrUnsupportedMedia) {
			HTTPError(w, http.StatusUnsupportedMediaType, "%v", err)
			return
		}
		HTTPError(w, http.StatusBadRequest, "bad stream file: %v", err)
		return
	}
	defer func() { s.mergeNames(src.Names()) }()

	buf := make([]core.Item, s.batch)
	var ingested int64
	var applyTotal time.Duration
	for {
		n := src.NextBatch(buf)
		if n == 0 {
			break
		}
		t0 := time.Now()
		s.target.UpdateBatch(buf[:n])
		d := time.Since(t0)
		applyTotal += d
		s.batchH.Observe(int64(n))
		s.applyH.Observe(int64(d))
		ingested += int64(n)
	}
	s.counters.Add("ingest.requests", 1)
	s.counters.Add("ingest.items", ingested)
	obs.AddStage(r.Context(), "apply", applyTotal)
	obs.Annotate(r.Context(), "items", ingested)
	if err := src.Err(); err != nil {
		// Items decoded before the failure are already ingested (the
		// stream model has no transactions); report both facts. A body
		// over the size cap is the client's to fix by chunking — signal
		// it as 413, distinct from genuinely torn data.
		var tooBig *http.MaxBytesError
		if errors.As(err, &tooBig) {
			HTTPError(w, http.StatusRequestEntityTooLarge,
				"body exceeds %d-byte ingest limit (ingested %d items); split into smaller requests", tooBig.Limit, ingested)
			return
		}
		HTTPError(w, http.StatusBadRequest, "body truncated or corrupt after %d items: %v", ingested, err)
		return
	}
	// Stamp the process epoch on every ack, so a write tier notices a
	// restart on the very next batch it forwards — without waiting for a
	// health probe or a /summary pull to observe the new epoch.
	w.Header().Set(HeaderEpoch, strconv.FormatUint(s.epoch, 10))
	// Ack with the live cumulative ingest total (free, from the counter):
	// target.N() would report the snapshot-lagged serving position — and
	// could charge a snapshot refresh to the write path to compute it.
	WriteJSON(w, http.StatusOK, map[string]int64{
		"ingested": ingested,
		"n":        s.counters.Get("ingest.items"),
	})
}

// handleSummary ships the summary's state: a fresh snapshot (taken under
// the ingest lock, one clone) encoded through the registry wire format,
// with the stream position and process epoch in headers. This is the
// cluster fan-in primitive — a freqmerge coordinator pulls it from every
// node and merges the blobs. For a Sharded target, Snapshot() already
// merges the per-shard clones into one summary of the node's whole
// stream, so the wire always carries exactly one blob per node.
func (s *Server) handleSummary(w http.ResponseWriter, r *http.Request) {
	sn, ok := s.target.(core.Snapshotter)
	if !ok {
		HTTPError(w, http.StatusNotImplemented, "target %s cannot snapshot", s.target.Name())
		return
	}
	s.counters.Add("summary.pulls", 1)
	WriteSummary(w, s.algo, s.epoch, sn.Snapshot())
}

// handleStats reports serving state: the summary's vitals, snapshot
// freshness, and traffic meters.
func (s *Server) handleStats(w http.ResponseWriter, r *http.Request) {
	// Report the live ingest position (one locked integer read) so the
	// ingest/serving lag is observable next to snapshot.as_of_n; the
	// snapshot read path would make the two always equal.
	n := s.target.N()
	if ln, ok := s.target.(interface{ LiveN() int64 }); ok {
		n = ln.LiveN()
	}
	resp := map[string]any{
		"algo":      s.algo,
		"summary":   s.target.Name(),
		"n":         n,
		"epoch":     s.epoch,
		"bytes":     s.target.Bytes(),
		"uptime_ms": time.Since(s.start).Milliseconds(),
		"counters":  s.counters.Snapshot(),
	}
	if ss, ok := s.target.(snapshotServer); ok {
		st := ss.SnapshotStats()
		resp["snapshot"] = map[string]any{
			"serving":      st.Serving,
			"as_of_n":      st.AsOfN,
			"age_ms":       st.Age.Milliseconds(),
			"refreshes":    st.Refreshes,
			"max_stale_ms": st.MaxStale.Milliseconds(),
		}
	}
	if ws, ok := s.view().(windowStatser); ok {
		// The serving view is a windowed summary: surface the window
		// shape and its error accounting next to the whole-stream n, so
		// operators can read the φ·W operating point (window_n), the
		// certified overestimate bound (slack), and how much of the
		// boundary block is expired-but-still-counted straight off the
		// endpoint.
		wst := ws.WindowStats()
		resp["window"] = map[string]any{
			"size":             wst.Size,
			"blocks":           wst.Blocks,
			"block_len":        wst.BlockLen,
			"k":                wst.K,
			"window_live":      wst.Live,
			"window_n":         wst.WindowN,
			"coverage":         wst.Coverage,
			"slack":            wst.Slack,
			"boundary_expired": wst.BoundaryExpired,
		}
	}
	if s.tenants != nil {
		resp["tenants"] = s.tenants.TableStats()
	}
	if ps, ok := s.target.(pipelineStatser); ok {
		// The target is the pipelined ingest plane: surface the
		// acknowledged-vs-applied gap (the staged in-flight backlog)
		// and the staging rings' footprint.
		pst := ps.PipelineStats()
		resp["pipeline"] = map[string]any{
			"shards":         pst.Shards,
			"ring_capacity":  pst.RingCapacity,
			"claimed_n":      pst.ClaimedN,
			"applied_n":      pst.AppliedN,
			"staged":         pst.ClaimedN - pst.AppliedN,
			"ring_bytes":     pst.RingBytes,
			"ring_occupancy": pst.RingOccupancy,
		}
	}
	if s.store != nil {
		ps := s.store.Stats()
		resp["wal"] = map[string]any{
			"dir":              ps.Dir,
			"fsync":            ps.Fsync,
			"segments":         ps.WALSegments,
			"active_segment":   ps.ActiveSegment,
			"end_n":            ps.WALEndN,
			"durable_n":        ps.DurableN,
			"lag":              ps.WALEndN - ps.DurableN,
			"max_lag":          s.maxLag,
			"appended_records": ps.AppendedRecords,
			"appended_bytes":   ps.AppendedBytes,
			"inline_drains":    ps.InlineDrains,
			"fsyncs":           ps.Fsyncs,
			"error":            ps.Err,
		}
		resp["checkpoint"] = map[string]any{
			"count":        ps.Checkpoints,
			"last_n":       ps.LastCkptN,
			"last_bytes":   ps.LastCkptBytes,
			"last_age_ms":  ps.LastCkptAge.Milliseconds(),
			"recovered_n":  ps.Recovery.RecoveredN,
			"replayed":     ps.Recovery.ReplayedRecords,
			"truncated_b":  ps.Recovery.TruncatedBytes,
			"ckpt_shards":  ps.Recovery.CheckpointShards,
			"checkpoint_n": ps.Recovery.CheckpointN,
		}
	}
	WriteJSON(w, http.StatusOK, resp)
}

// handleCheckpoint writes a durable checkpoint on demand — operators
// call it before planned maintenance so the restart replays nothing,
// and tests use it as a deterministic durability cutover.
func (s *Server) handleCheckpoint(w http.ResponseWriter, r *http.Request) {
	if s.store == nil {
		HTTPError(w, http.StatusNotImplemented, "persistence is not enabled (-data-dir)")
		return
	}
	ps, err := s.store.Checkpoint(s.durable)
	if err != nil {
		HTTPError(w, http.StatusInternalServerError, "checkpoint failed: %v", err)
		return
	}
	s.counters.Add("checkpoint.forced", 1)
	WriteJSON(w, http.StatusOK, map[string]int64{
		"n":     ps.LastCkptN,
		"bytes": ps.LastCkptBytes,
		"count": ps.Checkpoints,
	})
}

// handleRefresh forces a fresh serving snapshot, so operators (and
// tests) can cut over deterministically instead of waiting out the
// staleness bound.
func (s *Server) handleRefresh(w http.ResponseWriter, r *http.Request) {
	ss, ok := s.target.(snapshotServer)
	if !ok {
		HTTPError(w, http.StatusNotImplemented, "target has no snapshot serving")
		return
	}
	view := ss.RefreshSnapshot()
	if view == nil {
		HTTPError(w, http.StatusNotImplemented, "snapshot serving is not enabled on the target")
		return
	}
	s.counters.Add("snapshot.forced", 1)
	WriteJSON(w, http.StatusOK, map[string]int64{"n": view.N()})
}

// ListenAndServe serves the API on addr until stop is closed (or a
// listener error), then drains in-flight requests: the graceful-shutdown
// half of cmd/freqd, factored here so tests can drive it.
func (s *Server) ListenAndServe(addr string, stop <-chan struct{}) error {
	srv := &http.Server{Addr: addr, Handler: s.Handler()}
	errc := make(chan error, 1)
	go func() { errc <- srv.ListenAndServe() }()
	select {
	case err := <-errc:
		return err
	case <-stop:
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		return srv.Shutdown(ctx)
	}
}
