package serve

import (
	"fmt"
	"net/http"
	"sort"
	"strings"
)

// The versioned HTTP surface shared by all three daemons. Every
// endpoint lives under /v1/..., with the pre-versioning paths kept as
// aliases so existing clients, dashboards, and curl muscle memory keep
// working. The API wrapper owns the cross-cutting contract so the
// daemons cannot drift apart:
//
//   - method enforcement: a wrong method gets 405 with an Allow header
//     listing what the route accepts, in the JSON error envelope;
//   - one error shape: {"error":{"code":"...","message":"..."}} for
//     every failure on every daemon (HTTPError renders it);
//   - a uniform 404 envelope for unknown paths;
//   - GET /healthz on every daemon: a load balancer probes freqd,
//     freqmerge, and freqrouter identically.
//
// Handlers registered through Route never see a method they did not
// declare, so they carry no method checks of their own.

// API accumulates versioned routes into one mux.
type API struct {
	mux    *http.ServeMux
	routes []RouteInfo
}

// RouteInfo describes one registered route: the comma-separated methods
// it accepts and its canonical /v1 pattern (aliases are not listed —
// they are compatibility shims, not API surface).
type RouteInfo struct {
	Methods string
	Pattern string
}

// NewAPI returns an API with the fallback 404 envelope and /healthz
// pre-registered.
func NewAPI() *API {
	a := &API{mux: http.NewServeMux()}
	a.mux.HandleFunc("/", func(w http.ResponseWriter, r *http.Request) {
		HTTPError(w, http.StatusNotFound, "no such endpoint %s (the API lives under /v1/)", r.URL.Path)
	})
	a.Route("GET", "/healthz", func(w http.ResponseWriter, r *http.Request) {
		WriteJSON(w, http.StatusOK, map[string]string{"status": "ok"})
	}, "/healthz")
	return a
}

// Route registers handler at /v1<pattern> (and at each absolute legacy
// alias), accepting only the comma-separated methods. pattern may use
// ServeMux path wildcards ({ns}).
func (a *API) Route(methods, pattern string, handler http.HandlerFunc, aliases ...string) {
	allowed := strings.Split(methods, ",")
	wrapped := func(w http.ResponseWriter, r *http.Request) {
		for _, m := range allowed {
			if r.Method == m {
				handler(w, r)
				return
			}
		}
		w.Header().Set("Allow", strings.Join(allowed, ", "))
		HTTPError(w, http.StatusMethodNotAllowed, "%s requires %s", r.URL.Path, methods)
	}
	a.mux.HandleFunc("/v1"+pattern, wrapped)
	for _, alias := range aliases {
		a.mux.HandleFunc(alias, wrapped)
	}
	a.routes = append(a.routes, RouteInfo{Methods: methods, Pattern: "/v1" + pattern})
}

// Handler returns the assembled mux.
func (a *API) Handler() http.Handler { return a.mux }

// Routes returns every registered route sorted by pattern — the live
// introspection surface the README API-reference test diffs the docs
// against, so the table cannot drift from the mux.
func (a *API) Routes() []RouteInfo {
	out := append([]RouteInfo(nil), a.routes...)
	sort.Slice(out, func(i, j int) bool {
		if out[i].Pattern != out[j].Pattern {
			return out[i].Pattern < out[j].Pattern
		}
		return out[i].Methods < out[j].Methods
	})
	return out
}

// errorCode maps an HTTP status to the stable machine-readable code in
// the error envelope, so clients switch on a string that survives
// message rewording.
func errorCode(status int) string {
	switch status {
	case http.StatusBadRequest:
		return "bad_request"
	case http.StatusNotFound:
		return "not_found"
	case http.StatusMethodNotAllowed:
		return "method_not_allowed"
	case http.StatusRequestEntityTooLarge:
		return "payload_too_large"
	case http.StatusUnsupportedMediaType:
		return "unsupported_media_type"
	case http.StatusTooManyRequests:
		return "too_many_requests"
	case http.StatusInternalServerError:
		return "internal"
	case http.StatusNotImplemented:
		return "not_implemented"
	case http.StatusServiceUnavailable:
		return "unavailable"
	default:
		return fmt.Sprintf("http_%d", status)
	}
}
