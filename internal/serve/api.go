package serve

import (
	"fmt"
	"log/slog"
	"net/http"
	"sort"
	"strings"
	"time"

	"streamfreq/internal/obs"
)

// The versioned HTTP surface shared by all three daemons. Every
// endpoint lives under /v1/..., with the pre-versioning paths kept as
// aliases so existing clients, dashboards, and curl muscle memory keep
// working. The API wrapper owns the cross-cutting contract so the
// daemons cannot drift apart:
//
//   - method enforcement: a wrong method gets 405 with an Allow header
//     listing what the route accepts, in the JSON error envelope;
//   - one error shape: {"error":{"code":"...","message":"..."}} for
//     every failure on every daemon (HTTPError renders it);
//   - a uniform 404 envelope for unknown paths;
//   - GET /healthz on every daemon: a load balancer probes freqd,
//     freqmerge, and freqrouter identically;
//   - GET /v1/metrics on every daemon: the Prometheus scrape endpoint
//     over the daemon's obs registry;
//   - per-request observability: every routed request gets an
//     X-Freq-Trace ID (minted here unless the caller sent one), a
//     latency observation in the per-route histogram, a status-class
//     counter, a structured log line, and — past the -slow-query
//     threshold — a Warn entry with per-stage timings.
//
// Handlers registered through Route never see a method they did not
// declare, so they carry no method checks of their own.

// API accumulates versioned routes into one mux.
type API struct {
	mux    *http.ServeMux
	routes []RouteInfo
	obs    *obs.Obs
}

// RouteInfo describes one registered route: the comma-separated methods
// it accepts and its canonical /v1 pattern (aliases are not listed —
// they are compatibility shims, not API surface).
type RouteInfo struct {
	Methods string
	Pattern string
}

// NewAPI returns an API instrumented against o (obs.Discard when nil),
// with the fallback 404 envelope, /healthz, and the /v1/metrics scrape
// endpoint pre-registered.
func NewAPI(o *obs.Obs) *API {
	if o == nil {
		o = obs.Discard("")
	}
	a := &API{mux: http.NewServeMux(), obs: o}
	a.mux.HandleFunc("/", func(w http.ResponseWriter, r *http.Request) {
		HTTPError(w, http.StatusNotFound, "no such endpoint %s (the API lives under /v1/)", r.URL.Path)
	})
	a.Route("GET", "/healthz", func(w http.ResponseWriter, r *http.Request) {
		WriteJSON(w, http.StatusOK, map[string]string{"status": "ok"})
	}, "/healthz")
	// Born versioned, no legacy alias: scrapers configure /v1/metrics.
	metrics := o.Reg.Handler()
	a.Route("GET", "/metrics", func(w http.ResponseWriter, r *http.Request) {
		metrics.ServeHTTP(w, r)
	})
	return a
}

// routeInstr is one route's pre-created instruments, so the request
// path performs no registry lookups.
type routeInstr struct {
	latency *obs.Histogram
	byClass [6]*obs.Counter // status/100 → counter; 2xx..5xx populated
}

func (a *API) instruments(pattern string) *routeInstr {
	ri := &routeInstr{
		latency: a.obs.Reg.Histogram("freq_http_request_seconds",
			"HTTP request latency by route.", obs.LatencyOpts(),
			obs.Label{Key: "route", Value: pattern}),
	}
	for class := 2; class <= 5; class++ {
		ri.byClass[class] = a.obs.Reg.Counter("freq_http_requests_total",
			"HTTP requests by route and status class.",
			obs.Label{Key: "route", Value: pattern},
			obs.Label{Key: "code", Value: fmt.Sprintf("%dxx", class)})
	}
	return ri
}

// statusWriter captures the response status for metrics and logs.
type statusWriter struct {
	http.ResponseWriter
	code int
}

func (w *statusWriter) WriteHeader(code int) {
	w.code = code
	w.ResponseWriter.WriteHeader(code)
}

// Route registers handler at /v1<pattern> (and at each absolute legacy
// alias), accepting only the comma-separated methods. pattern may use
// ServeMux path wildcards ({ns}).
func (a *API) Route(methods, pattern string, handler http.HandlerFunc, aliases ...string) {
	allowed := strings.Split(methods, ",")
	canonical := "/v1" + pattern
	ri := a.instruments(canonical)
	wrapped := func(w http.ResponseWriter, r *http.Request) {
		start := time.Now()
		tid := r.Header.Get(obs.TraceHeader)
		if tid == "" {
			tid = obs.NewTraceID()
		}
		w.Header().Set(obs.TraceHeader, tid)
		ctx, stages := obs.WithStages(obs.WithTrace(r.Context(), tid))
		r = r.WithContext(ctx)
		sw := &statusWriter{ResponseWriter: w, code: http.StatusOK}
		served := false
		for _, m := range allowed {
			if r.Method == m {
				served = true
				handler(sw, r)
				break
			}
		}
		if !served {
			sw.Header().Set("Allow", strings.Join(allowed, ", "))
			HTTPError(sw, http.StatusMethodNotAllowed, "%s requires %s", r.URL.Path, methods)
		}
		elapsed := time.Since(start)
		ri.latency.Observe(int64(elapsed))
		if c := ri.byClass[sw.code/100%len(ri.byClass)]; c != nil {
			c.Inc()
		}
		a.logRequest(r, canonical, sw.code, elapsed, tid, stages)
	}
	a.mux.HandleFunc(canonical, wrapped)
	for _, alias := range aliases {
		a.mux.HandleFunc(alias, wrapped)
	}
	a.routes = append(a.routes, RouteInfo{Methods: methods, Pattern: canonical})
}

// logRequest emits the per-request structured log line: Debug for
// reads, Info for writes, Warn with per-stage timings once the request
// crosses the slow-query threshold.
func (a *API) logRequest(r *http.Request, route string, code int, elapsed time.Duration, tid string, stages *obs.Stages) {
	slow := a.obs.SlowQuery > 0 && elapsed >= a.obs.SlowQuery
	level := slog.LevelDebug
	msg := "request"
	if r.Method != http.MethodGet {
		level = slog.LevelInfo
	}
	if code >= 500 {
		level = slog.LevelError
	}
	if slow {
		level = slog.LevelWarn
		msg = "slow request"
	}
	if !a.obs.Log.Enabled(r.Context(), level) {
		return
	}
	attrs := []slog.Attr{
		slog.String("trace", tid),
		slog.String("method", r.Method),
		slog.String("route", route),
		slog.Int("status", code),
		slog.Duration("elapsed", elapsed),
	}
	if slow {
		attrs = append(attrs, slog.String("path", r.URL.Path))
	}
	attrs = append(attrs, stages.Attrs()...)
	a.obs.Log.LogAttrs(r.Context(), level, msg, attrs...)
}

// Handler returns the assembled mux.
func (a *API) Handler() http.Handler { return a.mux }

// Routes returns every registered route sorted by pattern — the live
// introspection surface the README API-reference test diffs the docs
// against, so the table cannot drift from the mux.
func (a *API) Routes() []RouteInfo {
	out := append([]RouteInfo(nil), a.routes...)
	sort.Slice(out, func(i, j int) bool {
		if out[i].Pattern != out[j].Pattern {
			return out[i].Pattern < out[j].Pattern
		}
		return out[i].Methods < out[j].Methods
	})
	return out
}

// errorCode maps an HTTP status to the stable machine-readable code in
// the error envelope, so clients switch on a string that survives
// message rewording.
func errorCode(status int) string {
	switch status {
	case http.StatusBadRequest:
		return "bad_request"
	case http.StatusNotFound:
		return "not_found"
	case http.StatusMethodNotAllowed:
		return "method_not_allowed"
	case http.StatusRequestEntityTooLarge:
		return "payload_too_large"
	case http.StatusUnsupportedMediaType:
		return "unsupported_media_type"
	case http.StatusTooManyRequests:
		return "too_many_requests"
	case http.StatusInternalServerError:
		return "internal"
	case http.StatusNotImplemented:
		return "not_implemented"
	case http.StatusServiceUnavailable:
		return "unavailable"
	default:
		return fmt.Sprintf("http_%d", status)
	}
}
