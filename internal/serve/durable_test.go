package serve_test

// End-to-end durability: freqd's wiring of the persistence layer, over
// a real HTTP loopback. The restart-under-traffic scenario — ingest
// over the wire, checkpoint mid-stream, kill without warning, restart,
// and serve /topk answers scored against exact truth at the φn
// operating point — plus the clean-shutdown contract (a final
// checkpoint means the next start replays zero WAL records) and the
// write-refusal contract once the log has failed.

import (
	"fmt"
	"net/http/httptest"
	"testing"
	"time"

	"streamfreq"
	"streamfreq/internal/core"
	"streamfreq/internal/exact"
	"streamfreq/internal/metrics"
	"streamfreq/internal/persist"
	"streamfreq/internal/serve"
	"streamfreq/internal/stream"
	"streamfreq/internal/zipf"
)

// buildDurable performs freqd's startup sequence over dir: construct
// the wrapper, recover, wire the WAL, enable snapshot serving.
func buildDurable(t *testing.T, dir, algo string, phi float64) (*core.Concurrent, *persist.Store, persist.RecoveryStats) {
	t.Helper()
	target := core.NewConcurrent(streamfreq.MustNew(algo, phi, 1))
	store, err := persist.Open(persist.Options{
		Dir:    dir,
		Algo:   algo,
		Fsync:  persist.FsyncAlways, // every acknowledged wire write is durable
		Decode: streamfreq.Decode,
	})
	if err != nil {
		t.Fatal(err)
	}
	stats, err := store.Recover(target)
	if err != nil {
		t.Fatalf("recover: %v", err)
	}
	target.PersistTo(store)
	target.ServeSnapshots(5 * time.Millisecond)
	return target, store, stats
}

type statsResponse struct {
	N   int64 `json:"n"`
	WAL struct {
		Segments        int    `json:"segments"`
		EndN            int64  `json:"end_n"`
		DurableN        int64  `json:"durable_n"`
		AppendedRecords int64  `json:"appended_records"`
		Error           string `json:"error"`
	} `json:"wal"`
	Checkpoint struct {
		Count       int64 `json:"count"`
		LastN       int64 `json:"last_n"`
		RecoveredN  int64 `json:"recovered_n"`
		Replayed    int   `json:"replayed"`
		CheckpointN int64 `json:"checkpoint_n"`
	} `json:"checkpoint"`
}

func TestFreqdDurableRestart(t *testing.T) {
	const (
		phi     = 0.001
		streamN = 120_000
	)
	dir := t.TempDir()
	g, err := zipf.NewGenerator(1<<15, 1.1, 0xFACE, true)
	if err != nil {
		t.Fatal(err)
	}
	items := g.Stream(streamN)

	// First life: ingest over the wire with a checkpoint partway.
	target, store, _ := buildDurable(t, dir, "SSH", phi)
	srv := serve.NewServer(serve.Options{Target: target, Algo: "SSH", Store: store})
	ts := httptest.NewServer(srv.Handler())
	const chunks = 8
	share := (len(items) + chunks - 1) / chunks
	for c := 0; c < chunks; c++ {
		lo, hi := c*share, min((c+1)*share, len(items))
		postOK(t, ts.URL+"/ingest", "application/octet-stream", stream.AppendRaw(nil, items[lo:hi]))
		if c == chunks/2-1 {
			postOK(t, ts.URL+"/checkpoint", "application/json", nil)
		}
	}
	var st1 statsResponse
	getJSON(t, ts.URL+"/stats", &st1)
	if st1.WAL.EndN != streamN || st1.WAL.DurableN != streamN {
		t.Fatalf("/stats wal = %+v, want end_n=durable_n=%d", st1.WAL, streamN)
	}
	if st1.Checkpoint.Count != 1 || st1.Checkpoint.LastN == 0 {
		t.Fatalf("/stats checkpoint = %+v, want one checkpoint", st1.Checkpoint)
	}
	ts.Close()
	// Kill -9: the store is abandoned — no Close, no final checkpoint.

	// Second life: recover and serve.
	target2, store2, rstats := buildDurable(t, dir, "SSH", phi)
	defer store2.Close()
	if rstats.RecoveredN != streamN {
		t.Fatalf("recovered n=%d, want %d (checkpoint %d + %d records)",
			rstats.RecoveredN, streamN, rstats.CheckpointN, rstats.ReplayedRecords)
	}
	if rstats.CheckpointN == 0 || rstats.ReplayedRecords == 0 {
		t.Fatalf("recovery did not exercise both paths: %+v", rstats)
	}
	srv2 := serve.NewServer(serve.Options{Target: target2, Algo: "SSH", Store: store2})
	ts2 := httptest.NewServer(srv2.Handler())
	defer ts2.Close()

	// /topk from the recovered summary must have perfect recall at φn
	// against exact truth over the full (fully durable) stream.
	postOK(t, ts2.URL+"/refresh", "application/json", nil)
	var tr topkResponse
	getJSON(t, ts2.URL+fmt.Sprintf("/topk?phi=%g", phi), &tr)
	if tr.N != streamN {
		t.Fatalf("/topk after restart: n=%d, want %d", tr.N, streamN)
	}
	truth := exact.New()
	for _, it := range items {
		truth.Update(it, 1)
	}
	threshold := int64(phi * float64(streamN))
	truthMap := metrics.TruthMap(truth.TopK(truth.Distinct()), threshold)
	report := make([]core.ItemCount, len(tr.Items))
	for i, it := range tr.Items {
		report[i] = core.ItemCount{Item: core.Item(it.Item), Count: it.Count}
	}
	if acc := metrics.Evaluate(report, truthMap); acc.Recall != 1 {
		t.Fatalf("recall at φn after restart = %v, want perfect: %s", acc.Recall, acc)
	}

	// The restart is also visible in /stats: recovery fields populated.
	var st2 statsResponse
	getJSON(t, ts2.URL+"/stats", &st2)
	if st2.Checkpoint.RecoveredN != streamN || st2.Checkpoint.Replayed == 0 {
		t.Fatalf("/stats after restart = %+v, want recovered_n=%d with replayed records", st2.Checkpoint, streamN)
	}
}

// TestFreqdCleanShutdownReplaysZero pins the graceful-shutdown
// contract: a final checkpoint plus a sealed log (exactly what
// cmd/freqd does on SIGTERM) leaves zero records to replay.
func TestFreqdCleanShutdownReplaysZero(t *testing.T) {
	dir := t.TempDir()
	target, store, _ := buildDurable(t, dir, "SSH", 0.005)
	srv := serve.NewServer(serve.Options{Target: target, Algo: "SSH", Store: store})
	ts := httptest.NewServer(srv.Handler())
	g, err := zipf.NewGenerator(1<<12, 1.2, 7, true)
	if err != nil {
		t.Fatal(err)
	}
	items := g.Stream(30_000)
	postOK(t, ts.URL+"/ingest", "application/octet-stream", stream.AppendRaw(nil, items))
	ts.Close()

	// freqd's shutdown sequence.
	if _, err := store.Checkpoint(target); err != nil {
		t.Fatalf("final checkpoint: %v", err)
	}
	if err := store.Close(); err != nil {
		t.Fatalf("close: %v", err)
	}

	_, store2, rstats := buildDurable(t, dir, "SSH", 0.005)
	defer store2.Close()
	if rstats.ReplayedRecords != 0 || rstats.TruncatedBytes != 0 {
		t.Fatalf("clean restart replayed %d records, truncated %d bytes; want 0/0",
			rstats.ReplayedRecords, rstats.TruncatedBytes)
	}
	if rstats.RecoveredN != int64(len(items)) {
		t.Fatalf("clean restart recovered n=%d, want %d", rstats.RecoveredN, len(items))
	}
}

// TestCheckpointEndpointWithoutStore: /checkpoint on an in-memory-only
// server is 501, not a crash.
func TestCheckpointEndpointWithoutStore(t *testing.T) {
	target := core.NewConcurrent(streamfreq.MustNew("SSH", 0.01, 1)).ServeSnapshots(0)
	srv := serve.NewServer(serve.Options{Target: target})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	resp := post(t, ts.URL+"/checkpoint", "application/json", nil)
	defer resp.Body.Close()
	if resp.StatusCode != 501 {
		t.Fatalf("POST /checkpoint without a store: %s, want 501", resp.Status)
	}
}

// TestIngestRefusedAfterWALFailure: once the log has latched a failure,
// the server stops acknowledging writes (503) while reads keep working.
func TestIngestRefusedAfterWALFailure(t *testing.T) {
	dir := t.TempDir()
	target, store, _ := buildDurable(t, dir, "SSH", 0.01)
	srv := serve.NewServer(serve.Options{Target: target, Algo: "SSH", Store: store})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	postOK(t, ts.URL+"/ingest", "application/octet-stream", stream.AppendRaw(nil, []core.Item{1, 2, 3}))
	// Seal the log out from under the server: the next append latches
	// the failure, and every ingest after that is refused.
	if err := store.Close(); err != nil {
		t.Fatal(err)
	}
	resp := post(t, ts.URL+"/ingest", "application/octet-stream", stream.AppendRaw(nil, []core.Item{4}))
	resp.Body.Close()
	resp = post(t, ts.URL+"/ingest", "application/octet-stream", stream.AppendRaw(nil, []core.Item{5}))
	defer resp.Body.Close()
	if resp.StatusCode != 503 {
		t.Fatalf("ingest after WAL failure: %s, want 503", resp.Status)
	}
	var tr topkResponse
	getJSON(t, ts.URL+"/topk?threshold=1", &tr) // reads still served
	var st statsResponse
	getJSON(t, ts.URL+"/stats", &st)
	if st.WAL.Error == "" {
		t.Fatal("/stats wal.error empty after WAL failure")
	}
}
