// Package hash implements the universal hash families that underpin every
// sketch in this repository.
//
// All sketch guarantees in the frequent-items literature are stated for
// pairwise (2-wise) or 4-wise independent hash functions. We implement the
// classic Carter–Wegman polynomial construction over the Mersenne prime
// field GF(2^61 − 1), which admits a very fast modular reduction, plus a
// ±1 "sign" family derived from it (as required by Count Sketch), and a
// strong 64-bit bit-mixing permutation used to scramble workload item
// identifiers.
//
// A k-wise independent family evaluated at any k distinct points yields
// uniformly and independently distributed values; pairwise independence is
// what the Count-Min and Count-Sketch analyses require, and degree-3
// polynomials (4-wise) are provided for the ablation study of hash
// strength (experiment BenchmarkAblationHash).
package hash

import (
	"fmt"
	"math/bits"

	"streamfreq/internal/prng"
)

// MersennePrime is 2^61 − 1, the modulus of the polynomial hash field.
const MersennePrime = (1 << 61) - 1

// mulmod returns (a * b) mod 2^61−1 using a 128-bit intermediate product.
// Both inputs must already be < 2^61−1.
func mulmod(a, b uint64) uint64 {
	hi, lo := bits.Mul64(a, b)
	// a*b = hi*2^64 + lo. With p = 2^61−1, 2^64 ≡ 2^3 (mod p), so fold the
	// product as (lo mod 2^61) + (hi*8 + lo>>61), then reduce once more.
	res := (lo & MersennePrime) + (hi<<3 | lo>>61)
	if res >= MersennePrime {
		res -= MersennePrime
	}
	return res
}

// addmod returns (a + b) mod 2^61−1 for a, b < 2^61−1.
func addmod(a, b uint64) uint64 {
	s := a + b
	if s >= MersennePrime {
		s -= MersennePrime
	}
	return s
}

// reduce maps an arbitrary 64-bit value into the field [0, 2^61−1).
func reduce(x uint64) uint64 {
	r := (x & MersennePrime) + (x >> 61)
	if r >= MersennePrime {
		r -= MersennePrime
	}
	return r
}

// Poly is a polynomial hash function h(x) = (c_{k-1} x^{k-1} + ... + c_0)
// mod p over GF(2^61−1). A degree-(k−1) polynomial with random
// coefficients is a k-wise independent family.
type Poly struct {
	coeff []uint64 // degree increasing order: coeff[0] + coeff[1]*x + ...
}

// NewPoly draws a fresh k-wise independent polynomial hash using
// randomness from seed. k must be at least 2.
func NewPoly(k int, seed uint64) Poly {
	if k < 2 {
		panic("hash: polynomial family requires k >= 2")
	}
	sm := prng.NewSplitMix64(seed)
	coeff := make([]uint64, k)
	for i := range coeff {
		coeff[i] = reduce(sm.Next())
	}
	// The leading coefficient must be nonzero for full independence.
	for coeff[k-1] == 0 {
		coeff[k-1] = reduce(sm.Next())
	}
	return Poly{coeff: coeff}
}

// Hash evaluates the polynomial at x (reduced into the field first) and
// returns a value uniform on [0, 2^61−1).
func (p Poly) Hash(x uint64) uint64 {
	xr := reduce(x)
	// Horner evaluation.
	acc := p.coeff[len(p.coeff)-1]
	for i := len(p.coeff) - 2; i >= 0; i-- {
		acc = addmod(mulmod(acc, xr), p.coeff[i])
	}
	return acc
}

// K reports the independence of the family (the number of coefficients).
func (p Poly) K() int { return len(p.coeff) }

// Bucket is a hash function from items to a fixed range [0, width).
type Bucket struct {
	p     Poly
	width uint64
}

// NewBucket returns a k-wise independent hash onto [0, width).
func NewBucket(k int, width int, seed uint64) Bucket {
	if width <= 0 {
		panic("hash: bucket width must be positive")
	}
	return Bucket{p: NewPoly(k, seed), width: uint64(width)}
}

// Hash returns the bucket index of x in [0, width).
func (b Bucket) Hash(x uint64) int {
	// Multiply-shift style range reduction of the field value. The field
	// value is uniform on [0, p); taking it mod width introduces a bias of
	// at most width/p < 2^-37 for any practical width, which is far below
	// the sketch error terms.
	return int(b.p.Hash(x) % b.width)
}

// Width returns the bucket range.
func (b Bucket) Width() int { return int(b.width) }

// Sign is a pairwise-independent hash from items to {+1, −1}, as required
// by the Count Sketch estimator. It is derived from a polynomial hash by
// taking one bit of the field value.
type Sign struct {
	p Poly
}

// NewSign returns a fresh ±1 family seeded by seed. k controls the
// independence of the underlying polynomial (2 suffices for the Count
// Sketch analysis).
func NewSign(k int, seed uint64) Sign {
	return Sign{p: NewPoly(k, seed)}
}

// Hash returns +1 or −1 for item x.
func (s Sign) Hash(x uint64) int64 {
	if s.p.Hash(x)&1 == 0 {
		return 1
	}
	return -1
}

// Mix64 is a fixed bijective mixing permutation on 64-bit integers
// (the finalizer of SplitMix64). It is used to scramble sequential rank
// identifiers produced by the Zipf generator so that item IDs carry no
// structure a hash family could accidentally exploit.
func Mix64(x uint64) uint64 {
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// Family bundles d independent bucket hashes and d sign hashes sharing a
// common base seed: row i uses deterministic sub-seeds, so two sketches
// constructed with the same (d, width, k, seed) are mergeable.
type Family struct {
	Buckets []Bucket
	Signs   []Sign
	seed    uint64
	k       int
}

// NewFamily constructs d rows of k-wise independent bucket hashes onto
// [0, width) with matching sign hashes.
func NewFamily(d, width, k int, seed uint64) *Family {
	if d <= 0 {
		panic("hash: family depth must be positive")
	}
	f := &Family{seed: seed, k: k}
	sm := prng.NewSplitMix64(seed)
	for i := 0; i < d; i++ {
		bseed := sm.Next()
		sseed := sm.Next()
		f.Buckets = append(f.Buckets, NewBucket(k, width, bseed))
		f.Signs = append(f.Signs, NewSign(k, sseed))
	}
	return f
}

// Seed returns the base seed the family was constructed with.
func (f *Family) Seed() uint64 { return f.seed }

// K returns the independence parameter.
func (f *Family) K() int { return f.k }

// Compatible reports whether two families were built with identical
// parameters and therefore index identical bucket layouts.
func (f *Family) Compatible(g *Family) error {
	switch {
	case g == nil:
		return fmt.Errorf("hash: nil family")
	case f.seed != g.seed:
		return fmt.Errorf("hash: seed mismatch (%d vs %d)", f.seed, g.seed)
	case f.k != g.k:
		return fmt.Errorf("hash: independence mismatch (%d vs %d)", f.k, g.k)
	case len(f.Buckets) != len(g.Buckets):
		return fmt.Errorf("hash: depth mismatch (%d vs %d)", len(f.Buckets), len(g.Buckets))
	case len(f.Buckets) > 0 && f.Buckets[0].width != g.Buckets[0].width:
		return fmt.Errorf("hash: width mismatch (%d vs %d)", f.Buckets[0].width, g.Buckets[0].width)
	}
	return nil
}
