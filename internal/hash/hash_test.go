package hash

import (
	"math"
	"math/big"
	"testing"
	"testing/quick"
)

func TestMulmodMatchesBigInt(t *testing.T) {
	p := new(big.Int).SetUint64(MersennePrime)
	f := func(a, b uint64) bool {
		a %= MersennePrime
		b %= MersennePrime
		got := mulmod(a, b)
		want := new(big.Int).Mul(new(big.Int).SetUint64(a), new(big.Int).SetUint64(b))
		want.Mod(want, p)
		return got == want.Uint64()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 10000}); err != nil {
		t.Error(err)
	}
}

func TestMulmodEdgeCases(t *testing.T) {
	max := uint64(MersennePrime - 1)
	cases := [][2]uint64{
		{0, 0}, {1, 1}, {max, max}, {max, 1}, {0, max}, {max, 2},
	}
	p := new(big.Int).SetUint64(MersennePrime)
	for _, c := range cases {
		want := new(big.Int).Mul(new(big.Int).SetUint64(c[0]), new(big.Int).SetUint64(c[1]))
		want.Mod(want, p)
		if got := mulmod(c[0], c[1]); got != want.Uint64() {
			t.Errorf("mulmod(%d,%d) = %d, want %d", c[0], c[1], got, want.Uint64())
		}
	}
}

func TestAddmodAndReduce(t *testing.T) {
	if got := addmod(MersennePrime-1, 1); got != 0 {
		t.Errorf("addmod(p-1,1) = %d, want 0", got)
	}
	if got := reduce(math.MaxUint64); got >= MersennePrime {
		t.Errorf("reduce(MaxUint64) = %d not in field", got)
	}
	// reduce must be the identity on field elements.
	for _, v := range []uint64{0, 1, 12345, MersennePrime - 1} {
		if reduce(v) != v {
			t.Errorf("reduce(%d) != identity", v)
		}
	}
}

func TestPolyDeterministicAndSeedSensitive(t *testing.T) {
	a := NewPoly(2, 11)
	b := NewPoly(2, 11)
	c := NewPoly(2, 12)
	diff := false
	for x := uint64(0); x < 100; x++ {
		if a.Hash(x) != b.Hash(x) {
			t.Fatal("same seed, different hashes")
		}
		if a.Hash(x) != c.Hash(x) {
			diff = true
		}
	}
	if !diff {
		t.Error("different seeds produced identical hash functions")
	}
}

func TestPolyRejectsK1(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for k < 2")
		}
	}()
	NewPoly(1, 0)
}

func TestBucketRange(t *testing.T) {
	for _, w := range []int{1, 2, 7, 100, 1 << 16} {
		b := NewBucket(2, w, 99)
		for x := uint64(0); x < 5000; x++ {
			h := b.Hash(x)
			if h < 0 || h >= w {
				t.Fatalf("bucket hash %d out of [0,%d)", h, w)
			}
		}
		if b.Width() != w {
			t.Fatalf("Width() = %d, want %d", b.Width(), w)
		}
	}
}

func TestBucketUniformity(t *testing.T) {
	const w, n = 64, 1 << 17
	b := NewBucket(2, w, 123)
	counts := make([]int, w)
	for x := uint64(0); x < n; x++ {
		counts[b.Hash(Mix64(x))]++
	}
	expected := float64(n) / w
	for i, c := range counts {
		if math.Abs(float64(c)-expected) > 6*math.Sqrt(expected) {
			t.Errorf("bucket %d count %d deviates from %.0f", i, c, expected)
		}
	}
}

func TestPairwiseIndependenceCollisions(t *testing.T) {
	// For a pairwise-independent family onto w buckets, Pr[h(x)=h(y)] ≈ 1/w
	// for x ≠ y. Estimate the collision rate over many function draws.
	const w = 16
	const trials = 4000
	collisions := 0
	for s := uint64(0); s < trials; s++ {
		b := NewBucket(2, w, s)
		if b.Hash(1) == b.Hash(2) {
			collisions++
		}
	}
	rate := float64(collisions) / trials
	want := 1.0 / w
	if math.Abs(rate-want) > 0.02 {
		t.Errorf("collision rate %.4f not ≈ %.4f", rate, want)
	}
}

func TestSignBalance(t *testing.T) {
	s := NewSign(2, 7)
	var sum int64
	const n = 1 << 16
	for x := uint64(0); x < n; x++ {
		v := s.Hash(Mix64(x))
		if v != 1 && v != -1 {
			t.Fatalf("sign hash returned %d", v)
		}
		sum += v
	}
	// Balanced within ~4 standard deviations (σ = √n = 256).
	if math.Abs(float64(sum)) > 4*math.Sqrt(n) {
		t.Errorf("sign sum %d too far from 0", sum)
	}
}

func TestSignDeterministic(t *testing.T) {
	a, b := NewSign(2, 5), NewSign(2, 5)
	for x := uint64(0); x < 1000; x++ {
		if a.Hash(x) != b.Hash(x) {
			t.Fatal("same-seed sign hashes diverge")
		}
	}
}

func TestMix64InjectiveOnSample(t *testing.T) {
	seen := make(map[uint64]uint64, 1<<16)
	for x := uint64(0); x < 1<<16; x++ {
		m := Mix64(x)
		if prev, ok := seen[m]; ok {
			t.Fatalf("Mix64 collision: %d and %d -> %d", prev, x, m)
		}
		seen[m] = x
	}
}

func TestFamilyCompatible(t *testing.T) {
	a := NewFamily(4, 128, 2, 9)
	b := NewFamily(4, 128, 2, 9)
	if err := a.Compatible(b); err != nil {
		t.Errorf("identical families incompatible: %v", err)
	}
	cases := []*Family{
		NewFamily(4, 128, 2, 10), // seed differs
		NewFamily(5, 128, 2, 9),  // depth differs
		NewFamily(4, 256, 2, 9),  // width differs
		NewFamily(4, 128, 4, 9),  // independence differs
	}
	for i, c := range cases {
		if err := a.Compatible(c); err == nil {
			t.Errorf("case %d: expected incompatibility", i)
		}
	}
	if err := a.Compatible(nil); err == nil {
		t.Error("nil family should be incompatible")
	}
}

func TestFamilyRowsIndependentlySeeded(t *testing.T) {
	f := NewFamily(3, 1024, 2, 21)
	// Rows must not be identical functions.
	same01, same12 := true, true
	for x := uint64(0); x < 200; x++ {
		if f.Buckets[0].Hash(x) != f.Buckets[1].Hash(x) {
			same01 = false
		}
		if f.Buckets[1].Hash(x) != f.Buckets[2].Hash(x) {
			same12 = false
		}
	}
	if same01 || same12 {
		t.Error("family rows are identical hash functions")
	}
}

func Test4WisePolyStillUniform(t *testing.T) {
	const w, n = 32, 1 << 16
	b := NewBucket(4, w, 77)
	counts := make([]int, w)
	for x := uint64(0); x < n; x++ {
		counts[b.Hash(Mix64(x))]++
	}
	expected := float64(n) / w
	for i, c := range counts {
		if math.Abs(float64(c)-expected) > 6*math.Sqrt(expected) {
			t.Errorf("bucket %d count %d deviates from %.0f", i, c, expected)
		}
	}
}
