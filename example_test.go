package streamfreq_test

import (
	"fmt"

	"streamfreq"
)

// The most common use: bounded-memory heavy hitters over an unbounded
// stream with Space-Saving.
func ExampleNewSpaceSaving() {
	s := streamfreq.NewSpaceSaving(100) // 100 counters, ever

	// Ten heavy arrivals of item 7 among noise.
	for i := 0; i < 10; i++ {
		s.Update(7, 1)
	}
	for i := 100; i < 110; i++ {
		s.Update(streamfreq.Item(i), 1)
	}

	for _, hh := range s.Query(5) {
		fmt.Println(hh.Item, hh.Count)
	}
	// Output:
	// 7 10
}

// Constructing any of the paper's algorithms by code, provisioned for a
// threshold φ.
func ExampleNew() {
	s, err := streamfreq.New("CMH", 0.01, 42)
	if err != nil {
		panic(err)
	}
	for i := 0; i < 100; i++ {
		s.Update(3, 1)
	}
	fmt.Println(s.Name(), s.Estimate(3))
	// Output:
	// CMH 100
}

// Sketches of two streams built with the same parameters subtract,
// yielding the frequency-difference vector (the max-change primitive).
func ExampleNewCountSketch() {
	yesterday := streamfreq.NewCountSketch(5, 1024, 7)
	today := streamfreq.NewCountSketch(5, 1024, 7)

	for i := 0; i < 50; i++ {
		yesterday.Update(1, 1)
		today.Update(1, 1) // stable item
	}
	for i := 0; i < 80; i++ {
		today.Update(2, 1) // trending item
	}

	if err := today.Subtract(yesterday); err != nil {
		panic(err)
	}
	fmt.Println("change of stable item:", today.Estimate(1))
	fmt.Println("change of trending item:", today.Estimate(2))
	// Output:
	// change of stable item: 0
	// change of trending item: 80
}

// Summaries serialize to compact blobs and reconstruct with Decode —
// the distributed merge pipeline.
func ExampleDecode() {
	shard := streamfreq.NewSpaceSaving(10)
	shard.Update(streamfreq.HashString("GET /index.html"), 3)

	blob, err := shard.MarshalBinary()
	if err != nil {
		panic(err)
	}
	back, err := streamfreq.Decode(blob)
	if err != nil {
		panic(err)
	}
	fmt.Println(back.Name(), back.Estimate(streamfreq.HashString("GET /index.html")))
	// Output:
	// SSH 3
}

// String keys hash to items deterministically.
func ExampleHashString() {
	a := streamfreq.HashString("query: weather")
	b := streamfreq.HashString("query: weather")
	fmt.Println(a == b)
	// Output:
	// true
}

// Sliding-window heavy hitters: old traffic expires.
func ExampleNewWindow() {
	w, err := streamfreq.NewWindow(1000, 4, 50)
	if err != nil {
		panic(err)
	}
	// Item 1 is hot now...
	for i := 0; i < 1000; i++ {
		if i%2 == 0 {
			w.Update(1)
		} else {
			w.Update(streamfreq.Item(100 + i))
		}
	}
	hotNow := w.Estimate(1) >= 400
	// ...then its traffic stops for well over one full window.
	for i := 0; i < 2000; i++ {
		w.Update(streamfreq.Item(5000 + i))
	}
	fmt.Println(hotNow, w.Estimate(1) <= w.Slack())
	// Output:
	// true true
}
