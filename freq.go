package streamfreq

import (
	"fmt"

	"streamfreq/internal/core"
	"streamfreq/internal/counters"
	"streamfreq/internal/quantile"
	"streamfreq/internal/sketches"
	"streamfreq/internal/window"
)

// Item identifies a stream element.
type Item = core.Item

// ItemCount pairs an item with an estimated or exact count.
type ItemCount = core.ItemCount

// Summary is the interface implemented by every algorithm: see
// core.Summary for the full contract.
type Summary = core.Summary

// BatchUpdater is implemented by summaries with a native amortized path
// for batches of unit-count arrivals; see core.BatchUpdater for the
// contract. Frequent, both Space-Saving variants, the flat sketches, and
// the concurrency wrappers implement it; use UpdateAll to ingest through
// the fastest available path uniformly.
type BatchUpdater = core.BatchUpdater

// Snapshotter is implemented by summaries that can produce an
// independent point-in-time deep copy of themselves; every algorithm in
// the registry does. Snapshots are the serving primitive: Concurrent and
// Sharded answer queries from epoch snapshots (ServeSnapshots) so
// readers never block ingest, and a snapshot can be serialized or merged
// while its parent keeps ingesting. See core.Snapshotter for the exact
// independence contract.
type Snapshotter = core.Snapshotter

// Merger is implemented by summaries that combine with a same-typed,
// same-parameter summary.
type Merger = core.Merger

// Subtractor is implemented by linear sketches that can compute stream
// differences.
type Subtractor = core.Subtractor

// ErrIncompatible is returned by Merge and Subtract when operands don't
// match.
var ErrIncompatible = core.ErrIncompatible

// DefaultBatchSize is the ingest batch length used by UpdateBatches (and
// the bundled tools) when the caller does not choose one.
const DefaultBatchSize = core.DefaultBatchSize

// UpdateAll feeds one unit-count arrival per element of items into s,
// through s's native batch path when it implements BatchUpdater and the
// scalar Update loop otherwise.
func UpdateAll(s Summary, items []Item) { core.UpdateAll(s, items) }

// UpdateBatches replays items into s in bounded batches (batch <= 0
// selects DefaultBatchSize), keeping batching summaries' scratch space
// independent of stream length.
func UpdateBatches(s Summary, items []Item, batch int) { core.UpdateBatches(s, items, batch) }

// Replay is the replay policy shared by the harness and the CLIs'
// -batch flag: a negative batch forces the scalar per-item Update loop
// (the pre-batching code path, kept for A/B throughput comparisons);
// any other value replays through UpdateBatches.
func Replay(s Summary, items []Item, batch int) {
	if batch < 0 {
		for _, it := range items {
			s.Update(it, 1)
		}
		return
	}
	core.UpdateBatches(s, items, batch)
}

// NewFrequent returns the Misra–Gries summary ("F") with k counters:
// deterministic, insert-only, estimates underestimate by at most n/(k+1).
func NewFrequent(k int) *counters.Frequent { return counters.NewFrequent(k) }

// NewLossyCounting returns the Manku–Motwani summary ("LC") with error
// parameter epsilon; estimates underestimate by at most εn.
func NewLossyCounting(epsilon float64) *counters.LossyCounting {
	return counters.NewLossyCounting(epsilon, counters.VariantLC)
}

// NewLossyCountingD returns the LCD variant, which reports count+Δ upper
// bounds instead of observed counts.
func NewLossyCountingD(epsilon float64) *counters.LossyCounting {
	return counters.NewLossyCounting(epsilon, counters.VariantLCD)
}

// NewSpaceSaving returns the Space-Saving summary with a min-heap
// ("SSH") and k counters: deterministic, insert-only, estimates
// overestimate by at most n/k.
func NewSpaceSaving(k int) *counters.SpaceSavingHeap {
	return counters.NewSpaceSavingHeap(k)
}

// NewSpaceSavingList returns the Stream-Summary (linked-list) variant
// ("SSL") of Space-Saving, with O(1) unit updates.
func NewSpaceSavingList(k int) *counters.SpaceSavingList {
	return counters.NewSpaceSavingList(k)
}

// NewStickySampling returns the Manku–Motwani probabilistic baseline.
func NewStickySampling(support, epsilon, delta float64, seed uint64) *counters.StickySampling {
	return counters.NewStickySampling(support, epsilon, delta, seed)
}

// NewFilteredSpaceSaving returns the Filtered Space-Saving refinement
// (extension; Homem & Carvalho 2010): a hashed error filter in front of
// the monitored set cuts spurious replacements on low-skew streams.
// filterCells = 0 selects the recommended 8k cells.
func NewFilteredSpaceSaving(k, filterCells int, seed uint64) *counters.FilteredSpaceSaving {
	return counters.NewFilteredSpaceSaving(k, filterCells, seed)
}

// NewCountMin returns a depth×width Count-Min sketch ("CM"). Flat
// sketches answer point queries only; combine with NewTracked or use
// NewCountMinHierarchy for heavy-hitter queries.
func NewCountMin(depth, width int, seed uint64) *sketches.CountMin {
	return sketches.NewCountMin(depth, width, seed)
}

// NewCountMinConservative returns the conservative-update ablation
// variant ("CMC").
func NewCountMinConservative(depth, width int, seed uint64) *sketches.CountMin {
	return sketches.NewCountMinConservative(depth, width, seed)
}

// NewCountSketch returns a depth×width Count Sketch ("CS").
func NewCountSketch(depth, width int, seed uint64) *sketches.CountSketch {
	return sketches.NewCountSketch(depth, width, seed)
}

// HierarchyConfig re-exports the hierarchical sketch configuration.
type HierarchyConfig = sketches.HierarchyConfig

// NewCountMinHierarchy returns the paper's CMH structure: a dyadic stack
// of Count-Min sketches supporting threshold queries over the universe.
func NewCountMinHierarchy(cfg HierarchyConfig) (*sketches.Hierarchical, error) {
	return sketches.NewCountMinHierarchy(cfg)
}

// NewCountSketchHierarchy returns the Count-Sketch equivalent ("CSH").
func NewCountSketchHierarchy(cfg HierarchyConfig) (*sketches.Hierarchical, error) {
	return sketches.NewCountSketchHierarchy(cfg)
}

// NewCGT returns the Combinatorial Group Testing sketch.
func NewCGT(depth, width int, universeBits uint, seed uint64) *sketches.CGT {
	return sketches.NewCGT(depth, width, universeBits, seed)
}

// NewTracked wraps a flat sketch with the Charikar et al. top-capacity
// heap, turning point estimates into heavy-hitter reports.
func NewTracked(inner Summary, capacity int) *core.Tracked {
	return core.NewTracked(inner, capacity)
}

// NewConcurrent makes any summary safe for concurrent use. Call
// ServeSnapshots on the result to answer queries from epoch snapshots
// instead of locking the summary on every read.
func NewConcurrent(inner Summary) *core.Concurrent { return core.NewConcurrent(inner) }

// NewSharded partitions ingest across a power-of-two number of
// independently locked summaries. Call ServeSnapshots on the result for
// lock-free snapshot reads; Snapshot merges per-shard clones into one
// independent summary of the whole stream.
func NewSharded(shards int, factory func() Summary) *core.Sharded {
	return core.NewSharded(shards, factory)
}

// NewPipelined builds the lock-free ingest plane: updates are staged
// into per-shard MPSC rings and applied in claimed stream order by one
// drainer goroutine per shard, so concurrent writers never contend on
// a summary mutex while keeping ingest bit-identical to sequential
// batching. Same factory contract as NewSharded; call Close to stop
// the drainers. See core.Pipelined for the ordering and durability
// guarantees.
func NewPipelined(shards int, factory func() Summary) *core.Pipelined {
	return core.NewPipelined(shards, factory)
}

// NewWindow returns a sliding-window heavy-hitter summary over the most
// recent size items, using blocks Space-Saving summaries of k counters
// each (extension; see internal/window).
func NewWindow(size, blocks, k int) (*window.Window, error) {
	return window.New(size, blocks, k)
}

// NewWindowed returns the sliding window lifted to the full summary
// contract ("SSW"): Summary + BatchUpdater + Snapshotter + Merger with
// the WN01 wire format, so it serves, checkpoints, recovers, and merges
// through the same machinery as the whole-stream summaries. size must
// be a multiple of blocks.
func NewWindowed(size, blocks, k int) (*window.Windowed, error) {
	return window.NewWindowed(size, blocks, k)
}

// NewWindowedForPhi provisions a windowed summary for threshold phi
// over the last size items with blocks blocks: each block gets the
// canonical counter budget k = ⌈1/φ⌉, the same equal-guarantee sizing
// the registry applies to the flat counter summaries.
func NewWindowedForPhi(phi float64, size, blocks int) (*window.Windowed, error) {
	if phi <= 0 || phi >= 1 {
		return nil, fmt.Errorf("streamfreq: phi must be in (0,1), got %g", phi)
	}
	return window.NewWindowed(size, blocks, kForPhi(phi))
}

// NewQuantile returns a Greenwald–Khanna ε-approximate quantile summary,
// the companion summary class of the frequent-items toolbox. Since PR 9
// GK implements the full summary contract (Summary, BatchUpdater,
// Snapshotter, Merger, GK01 wire format), so it serves, checkpoints,
// recovers, and merges like every roster algorithm; see
// internal/quantile.
func NewQuantile(epsilon float64) *quantile.GK { return quantile.New(epsilon) }

// NewQuantileForPhi provisions a GK summary with ε = φ/2, the same
// equal-guarantee sizing the registry applies to the sketches (width 2/φ
// gives ε = φ/2), so `freqd -algo gk` at a given -phi is comparable to
// the sketch configurations at that φ. Equal-φ summaries are mergeable.
func NewQuantileForPhi(phi float64) (*quantile.GK, error) {
	if phi <= 0 || phi >= 1 {
		return nil, fmt.Errorf("streamfreq: phi must be in (0,1), got %g", phi)
	}
	return quantile.New(phi / 2), nil
}

// HashString maps a string key (search query, URL, flow tuple) to an
// Item; HashBytes is the []byte equivalent.
func HashString(key string) Item { return core.HashString(key) }

// HashBytes maps a byte-slice key to an Item.
func HashBytes(key []byte) Item { return core.HashBytes(key) }
