package streamfreq

// Registry-wide partition-merge wall: split one stream into K
// partitions by the *router's* hash ring — the exact split the write
// tier performs in production — feed K independent summaries, and pin
// the two properties partitioned serving rests on, for every algorithm
// with a wire format:
//
//  1. Partition-exactness tightens bounds: an item's every arrival
//     lands on the shard the ring owns it to, so the owning partition's
//     summary estimates it within the documented envelope at its *own*
//     substream length n_p — a strictly tighter operating point than
//     the φ·N envelope of any whole-stream (or merged) summary.
//  2. Wire fidelity at fan-in degree K: MergeEncoded over the K
//     partition blobs is bit-identical to merging the live summaries,
//     and the merged N is the exact union length — so a coordinator
//     that *does* choose to merge partitions loses nothing to the wire.

import (
	"fmt"
	"testing"

	"streamfreq/internal/exact"
	"streamfreq/internal/router"
	"streamfreq/internal/zipf"
)

func TestPartitionMergeRegistry(t *testing.T) {
	const (
		K       = 4
		phi     = 0.005
		seed    = 42
		streamN = 60_000
	)
	g, err := zipf.NewGenerator(1<<14, 1.1, 0xACE, true)
	if err != nil {
		t.Fatal(err)
	}
	items := g.Stream(streamN)

	ids := make([]string, K)
	for i := range ids {
		ids[i] = fmt.Sprintf("p%d", i)
	}
	ring, err := router.NewRing(ids, 0)
	if err != nil {
		t.Fatal(err)
	}
	parts := ring.Split(items, make([][]Item, K))

	// Per-partition and union ground truth (the substreams are disjoint,
	// so a global heavy hitter's true count equals its count on its
	// owning partition).
	unionTruth := exact.New()
	partTruth := make([]*exact.Counter, K)
	for p := range parts {
		partTruth[p] = exact.New()
		if len(parts[p]) == 0 {
			t.Fatalf("partition %d is empty: the ring starved an arc (geometry K=%d, vnodes=%d)", p, K, ring.VNodes())
		}
		for _, it := range parts[p] {
			partTruth[p].Update(it, 1)
			unionTruth.Update(it, 1)
		}
	}
	threshold := int64(phi * float64(streamN))
	hitters := unionTruth.TopK(unionTruth.Distinct())

	for _, algo := range Algorithms() {
		t.Run(algo, func(t *testing.T) {
			feed := func(p int) Summary {
				s := MustNew(algo, phi, seed)
				UpdateAll(s, parts[p])
				return s
			}
			sums := make([]Summary, K)
			blobs := make([][]byte, K)
			for p := 0; p < K; p++ {
				sums[p] = feed(p)
				blobs[p] = marshal(t, fmt.Sprintf("%s/p%d", algo, p), sums[p])
			}

			// (1) Per-partition estimates of every union heavy hitter,
			// within the envelope at n_p — and that envelope really is
			// tighter than the whole-stream one.
			for _, ic := range hitters {
				if ic.Count < threshold {
					break
				}
				p := ring.Shard(ic.Item)
				np := int64(len(parts[p]))
				under, over := mergeBounds(t, algo, np, phi, partTruth[p].SecondMoment())
				underN, overN := mergeBounds(t, algo, int64(streamN), phi, unionTruth.SecondMoment())
				if under > underN || over > overN {
					t.Fatalf("per-partition envelope (−%d/+%d at n_p=%d) looser than whole-stream (−%d/+%d at n=%d)",
						under, over, np, underN, overN, streamN)
				}
				if got, want := partTruth[p].Estimate(ic.Item), ic.Count; got != want {
					t.Fatalf("item %#x: partition %d true count %d ≠ union count %d — misrouted arrivals",
						uint64(ic.Item), p, got, want)
				}
				est := sums[p].Estimate(ic.Item)
				if est < ic.Count-under {
					t.Fatalf("item %#x: partition %d estimate %d below true %d − per-partition bound %d",
						uint64(ic.Item), p, est, ic.Count, under)
				}
				if est > ic.Count+over {
					t.Fatalf("item %#x: partition %d estimate %d above true %d + per-partition bound %d",
						uint64(ic.Item), p, est, ic.Count, over)
				}
			}

			// (2) Wire fidelity at fan-in K: blob-merge ≡ live-merge,
			// byte for byte, with the exact union N.
			merged, err := MergeEncoded(blobs...)
			if err != nil {
				t.Fatalf("MergeEncoded over %d partitions: %v", K, err)
			}
			if merged.N() != int64(streamN) {
				t.Fatalf("merged N = %d, want %d", merged.N(), streamN)
			}
			direct := feed(0)
			for p := 1; p < K; p++ {
				if err := direct.(Merger).Merge(feed(p)); err != nil {
					t.Fatalf("live merge of partition %d: %v", p, err)
				}
			}
			if got, want := marshal(t, algo+"/merged", merged), marshal(t, algo+"/direct", direct); string(got) != string(want) {
				t.Fatalf("MergeEncoded and live Merge encode differently over %d partitions (%d vs %d bytes)",
					K, len(got), len(want))
			}
		})
	}
}
