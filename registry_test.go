package streamfreq

import (
	"strings"
	"testing"
)

// TestSupportedMagics pins the wire-format roster: every magic the
// decoders table dispatches on, sorted.
func TestSupportedMagics(t *testing.T) {
	got := strings.Join(SupportedMagics(), " ")
	want := "CG01 CM01 CS01 FQ01 GK01 HI01 LC01 SL01 SS01 TK01 WN01"
	if got != want {
		t.Fatalf("SupportedMagics() = %q, want %q", got, want)
	}
}

// TestDecodeErrorPath is a table-driven check of Decode's rejection
// diagnostics: unknown magics are rendered as hex (they are arbitrary —
// possibly non-printable — bytes) and the error names the supported
// formats, so a user holding a corrupt or foreign blob can tell which
// failure they have from the message alone.
func TestDecodeErrorPath(t *testing.T) {
	cases := []struct {
		name string
		data []byte
		want []string // substrings the error must contain
	}{
		{
			name: "empty",
			data: nil,
			want: []string{"too short", "0 bytes"},
		},
		{
			name: "three bytes",
			data: []byte("CM0"),
			want: []string{"too short", "3 bytes"},
		},
		{
			name: "printable unknown magic",
			data: []byte("NOPE-not-a-summary"),
			want: []string{"unknown blob magic", "0x4e4f5045", "CM01", "SS01", "LC01"},
		},
		{
			name: "non-printable unknown magic",
			data: []byte{0x00, 0xde, 0xad, 0xbe, 0xef, 0x01},
			want: []string{"unknown blob magic", "0x00deadbe", "supported:"},
		},
		{
			name: "stream-file magic is not a summary blob",
			data: []byte("SFSTRM01"),
			want: []string{"unknown blob magic", "0x53465354"},
		},
		{
			name: "lowercased known magic",
			data: []byte("cm01xxxxxxxx"),
			want: []string{"unknown blob magic", "0x636d3031"},
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			s, err := Decode(tc.data)
			if err == nil {
				t.Fatalf("Decode(%q) succeeded (%T), want error", tc.data, s)
			}
			for _, sub := range tc.want {
				if !strings.Contains(err.Error(), sub) {
					t.Fatalf("Decode(%q) error %q does not mention %q", tc.data, err, sub)
				}
			}
		})
	}
}

// TestDecodeStillDispatchesKnownMagics guards the refactor from a switch
// to a decoder table: a valid blob of each family round-trips.
func TestDecodeStillDispatchesKnownMagics(t *testing.T) {
	sources := map[string]Summary{
		"SS01": NewSpaceSaving(8),
		"CM01": NewCountMin(2, 32, 1),
	}
	for magic, s := range sources {
		s.Update(5, 3)
		blob, err := s.(interface{ MarshalBinary() ([]byte, error) }).MarshalBinary()
		if err != nil {
			t.Fatal(err)
		}
		if string(blob[:4]) != magic {
			t.Fatalf("%s: blob magic is %q", s.Name(), blob[:4])
		}
		dec, err := Decode(blob)
		if err != nil {
			t.Fatalf("%s: %v", s.Name(), err)
		}
		if dec.Estimate(5) != 3 {
			t.Fatalf("%s: decoded Estimate(5) = %d, want 3", s.Name(), dec.Estimate(5))
		}
	}
}
