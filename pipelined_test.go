package streamfreq

// Property wall for the pipelined ingest plane (core.Pipelined): the
// PR-1 batched==scalar determinism and the PR-3 crash-recovery
// fidelity must survive the move from mutex ingest to staged rings.
// The load-bearing claim is ordering — per-shard apply order equals
// global claim order — so the wall compares states by Encode bytes,
// not by query answers.

import (
	"bytes"
	"fmt"
	"sync"
	"testing"

	"streamfreq/internal/core"
	"streamfreq/internal/persist"
)

// unevenBatches slices stream at deliberately irregular boundaries,
// the unit both the WAL and the staging rings preserve.
func unevenBatches(stream []Item) [][]Item {
	sizes := []int{512, 7, 1024, 129, 2048, 33}
	var batches [][]Item
	for i := 0; len(stream) > 0; i++ {
		n := sizes[i%len(sizes)]
		if n > len(stream) {
			n = len(stream)
		}
		batches = append(batches, stream[:n])
		stream = stream[n:]
	}
	return batches
}

// TestPipelinedMatchesSequentialRegistry is the acceptance property
// over the full registry: single-writer pipelined ingest is
// bit-identical (per-shard Encode bytes) to sequential Sharded ingest
// with the same batch boundaries — the staged rings reproduce exactly
// the scatter the locked path performs.
func TestPipelinedMatchesSequentialRegistry(t *testing.T) {
	if testing.Short() {
		t.Skip("property wall: full registry sweep")
	}
	const phi, seed, shards = 0.001, 20080824, 4
	streams := equivStreams(t)
	for _, algo := range Algorithms() {
		algo := algo
		for _, name := range []string{"skewed", "flat", "churn"} {
			stream := streams[name]
			t.Run(algo+"/"+name, func(t *testing.T) {
				factory := func() core.Summary { return MustNew(algo, phi, seed) }
				seq := core.NewSharded(shards, factory)
				pip := core.NewPipelined(shards, factory)
				defer pip.Close()
				for _, b := range unevenBatches(stream) {
					seq.UpdateBatch(b)
					pip.UpdateBatch(b)
				}
				if !bytes.Equal(marshalState(t, seq), marshalState(t, pip)) {
					t.Fatalf("%s/%s: pipelined shard state is not bit-identical to sequential Sharded ingest", algo, name)
				}
			})
		}
	}
}

// TestPipelinedConcurrentWritersCommutative runs many writers with
// arbitrary claim interleavings against the purely linear sketches
// (CMH, CGT — counter arrays with no tracking heap), whose per-shard
// state is a sum and therefore order-invariant: whatever order the
// plane applied, the final bytes must equal the sequential run's.
// (Order-dependent algorithms — anything with a heap or eviction — are
// covered by the single-writer bit-identity above and the op-log
// ordering test in internal/core.)
func TestPipelinedConcurrentWritersCommutative(t *testing.T) {
	const phi, seed, shards, writers = 0.001, 20080824, 4, 8
	stream := equivStreams(t)["skewed"]
	batches := unevenBatches(stream)
	for _, algo := range []string{"CMH", "CGT"} {
		algo := algo
		t.Run(algo, func(t *testing.T) {
			factory := func() core.Summary { return MustNew(algo, phi, seed) }
			seq := core.NewSharded(shards, factory)
			for _, b := range batches {
				seq.UpdateBatch(b)
			}
			pip := core.NewPipelined(shards, factory)
			defer pip.Close()
			var wg sync.WaitGroup
			for w := 0; w < writers; w++ {
				wg.Add(1)
				go func(w int) {
					defer wg.Done()
					for i := w; i < len(batches); i += writers {
						pip.UpdateBatch(batches[i])
					}
				}(w)
			}
			wg.Wait()
			if !bytes.Equal(marshalState(t, seq), marshalState(t, pip)) {
				t.Fatalf("%s: concurrent pipelined ingest diverged from the sequential state", algo)
			}
		})
	}
}

// TestCrashRecoveryPipelined runs the PR-3 kill-at-arbitrary-offset
// wall through the pipelined plane: WAL order equals claim order
// equals apply order, so a torn log still replays to a bit-identical
// state. Two algorithms: order-dependent SSH and sketch CM.
func TestCrashRecoveryPipelined(t *testing.T) {
	for _, algo := range []string{"SSH", "CM"} {
		algo := algo
		for round := uint64(0); round < 2; round++ {
			t.Run(fmt.Sprintf("%s-4shards/tear-%d", algo, round), func(t *testing.T) {
				checkCrashRecovery(t, algo, func() persist.Target {
					return core.NewPipelined(4, func() core.Summary {
						return MustNew(algo, 0.0025, 42)
					})
				}, 0xBEEF+round*131+uint64(len(algo)))
			})
		}
	}
}

// TestPipelinedCheckpointUnderConcurrentIngest checkpoints a live,
// multi-writer pipelined plane repeatedly: every checkpoint cut must
// match the WAL position exactly (persist.Checkpoint latches an error
// otherwise), and a restart from the final log must reproduce the
// plane's state byte for byte.
func TestPipelinedCheckpointUnderConcurrentIngest(t *testing.T) {
	const shards, writers, rounds, batch = 4, 4, 60, 97
	dir := t.TempDir()
	opts := persist.Options{Dir: dir, Algo: "SSH", Fsync: persist.FsyncNever, Decode: Decode}
	factory := func() core.Summary { return MustNew("SSH", 0.0025, 42) }

	p := core.NewPipelined(shards, factory)
	st, err := persist.Open(opts)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := st.Recover(p); err != nil {
		t.Fatal(err)
	}
	p.PersistTo(st)

	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			buf := make([]Item, batch)
			for i := 0; i < rounds; i++ {
				for j := range buf {
					buf[j] = Item(uint64(w)<<32 | uint64(i*batch+j)%4096)
				}
				p.UpdateBatch(buf)
			}
		}(w)
	}
	for c := 0; c < 8; c++ {
		if _, err := st.Checkpoint(p); err != nil {
			t.Fatalf("checkpoint %d under concurrent ingest: %v", c, err)
		}
	}
	wg.Wait()
	if err := st.Err(); err != nil {
		t.Fatal(err)
	}
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}

	rec := core.NewPipelined(shards, factory)
	st2, err := persist.Open(opts)
	if err != nil {
		t.Fatal(err)
	}
	defer st2.Close()
	stats, err := st2.Recover(rec)
	if err != nil {
		t.Fatal(err)
	}
	want := int64(writers * rounds * batch)
	if stats.RecoveredN != want || rec.LiveN() != want {
		t.Fatalf("recovered n=%d (LiveN %d), want %d", stats.RecoveredN, rec.LiveN(), want)
	}
	if !bytes.Equal(marshalState(t, p), marshalState(t, rec)) {
		t.Fatal("restart from the final log did not reproduce the live plane's state")
	}
}
