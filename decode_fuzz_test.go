package streamfreq

// Robustness of the wire-format decoders: arbitrary and mutated bytes
// must produce errors, never panics or runaway allocations. This is the
// failure-injection arm of the test plan (DESIGN.md §6).

import (
	"bytes"
	"testing"
	"testing/quick"

	"streamfreq/internal/prng"
)

// decodeNeverPanics drives Decode with hostile input.
func decodeNeverPanics(t *testing.T, data []byte) {
	t.Helper()
	defer func() {
		if r := recover(); r != nil {
			t.Fatalf("Decode panicked on %d bytes: %v", len(data), r)
		}
	}()
	_, _ = Decode(data)
}

func TestDecodeRandomBytesNeverPanic(t *testing.T) {
	f := func(data []byte) bool {
		decodeNeverPanics(t, data)
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}

func TestDecodeRandomBytesWithValidMagics(t *testing.T) {
	// Random payloads behind each valid magic: exercises every decoder's
	// header validation, not just the magic dispatch.
	rng := prng.New(0xFADE)
	magics := []string{"CM01", "CS01", "CG01", "HI01", "FQ01", "SS01", "SL01", "LC01", "TK01", "WN01", "GK01"}
	for _, magic := range magics {
		for trial := 0; trial < 300; trial++ {
			size := int(rng.Uint64n(256))
			data := make([]byte, 4+size)
			copy(data, magic)
			for i := 4; i < len(data); i++ {
				data[i] = byte(rng.Uint64())
			}
			decodeNeverPanics(t, data)
		}
	}
}

func TestDecodeBitFlippedBlobs(t *testing.T) {
	// Take real blobs and flip every byte position in turn: decoders must
	// reject or produce a structurally valid summary, never panic.
	sources := []Summary{
		NewFrequent(4),
		NewSpaceSaving(4),
		NewSpaceSavingList(4),
		NewLossyCounting(0.1),
		NewCountMin(2, 16, 3),
		NewCountSketch(3, 16, 3),
		NewCGT(2, 8, 16, 3),
		NewTracked(NewCountMin(2, 16, 3), 8),
		mustWindowedSummary(8, 2, 3),
		NewQuantile(0.1),
	}
	for _, s := range sources {
		s.Update(1, 5)
		s.Update(2, 2)
		blob, err := s.(interface{ MarshalBinary() ([]byte, error) }).MarshalBinary()
		if err != nil {
			t.Fatal(err)
		}
		for pos := 0; pos < len(blob); pos++ {
			mut := append([]byte(nil), blob...)
			mut[pos] ^= 0xFF
			func() {
				defer func() {
					if r := recover(); r != nil {
						t.Fatalf("%s: panic with byte %d flipped: %v", s.Name(), pos, r)
					}
				}()
				if dec, err := Decode(mut); err == nil && dec != nil {
					// A surviving decode must still behave like a summary.
					_ = dec.Estimate(1)
					_ = dec.Bytes()
					_ = dec.Query(1)
				}
			}()
		}
	}
}

// FuzzDecode is the native-fuzzing arm of the hostile-input property:
// whatever bytes arrive, Decode errors or returns a structurally valid
// summary — never a panic. The seed corpus covers every supported magic
// with both valid and garbage payloads.
func FuzzDecode(f *testing.F) {
	f.Add([]byte(nil))
	f.Add([]byte("CM0"))
	f.Add([]byte("NOPE-not-a-summary"))
	for _, magic := range SupportedMagics() {
		f.Add(append([]byte(magic), 0xde, 0xad, 0xbe, 0xef))
	}
	seedSources := []Summary{
		NewFrequent(4),
		NewSpaceSaving(4),
		NewSpaceSavingList(4),
		NewLossyCounting(0.1),
		NewCountMin(2, 16, 3),
		NewCountSketch(3, 16, 3),
		NewCGT(2, 8, 16, 3),
		NewTracked(NewCountMin(2, 16, 3), 8),
		mustWindowedSummary(8, 2, 3),
		NewQuantile(0.1),
	}
	for _, s := range seedSources {
		s.Update(1, 5)
		s.Update(2, 2)
		blob, err := s.(interface{ MarshalBinary() ([]byte, error) }).MarshalBinary()
		if err != nil {
			f.Fatal(err)
		}
		f.Add(blob)
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		defer func() {
			if r := recover(); r != nil {
				t.Fatalf("Decode panicked on %d bytes: %v", len(data), r)
			}
		}()
		dec, err := Decode(data)
		if err == nil && dec != nil {
			_ = dec.Estimate(1)
			_ = dec.Bytes()
			_ = dec.Query(1)
			_ = dec.N()
		}
	})
}

// fuzzItems turns fuzz bytes into a small-universe item stream: each
// byte contributes one arrival from a 32-item universe, forcing heavy
// collision/eviction traffic through every summary.
func fuzzItems(data []byte) []Item {
	if len(data) > 2048 {
		data = data[:2048]
	}
	items := make([]Item, len(data))
	for i, b := range data {
		items[i] = Item(b % 32)
	}
	return items
}

// FuzzSnapshotRoundTrip is the Clone→Encode→Decode property over the
// counter encodings (FQ01, SS01, LC01) alongside the sketch magics
// (CM01 — plain and conservative — CS01, CG01, HI01): for any ingest
// history, a snapshot's serialization decodes to a summary that answers
// exactly like the parent, and serializing the snapshot after the parent
// has moved on yields the same bytes as serializing it before — the wire
// form of snapshot immutability.
func FuzzSnapshotRoundTrip(f *testing.F) {
	f.Add([]byte(nil))
	f.Add([]byte{0})
	f.Add([]byte("abacabadabacaba"))
	f.Add(bytes.Repeat([]byte{1, 1, 2, 3, 5, 8, 13, 21}, 40))
	seed := make([]byte, 257)
	for i := range seed {
		seed[i] = byte(i * 31)
	}
	f.Add(seed)

	f.Fuzz(func(t *testing.T, data []byte) {
		items := fuzzItems(data)
		builders := []func() Summary{
			func() Summary { return NewFrequent(5) },
			func() Summary { return NewSpaceSaving(5) },
			func() Summary { return NewSpaceSavingList(5) },
			func() Summary { return NewTracked(NewCountMin(2, 16, 3), 8) },
			func() Summary { return NewLossyCounting(0.1) },
			func() Summary { return NewLossyCountingD(0.1) },
			func() Summary { return NewCountMin(2, 16, 3) },
			func() Summary { return NewCountMinConservative(2, 16, 3) },
			func() Summary { return NewCountSketch(3, 16, 3) },
			func() Summary { return NewCGT(2, 8, 8, 3) },
			func() Summary {
				h, err := NewCountMinHierarchy(HierarchyConfig{Depth: 2, Width: 16, Bits: 4, UniverseBits: 8, Seed: 3})
				if err != nil {
					t.Fatal(err)
				}
				return h
			},
			// The windowed summary (WN01): tiny blocks force rotations
			// through every fuzz stream, so the snapshotted ring exercises
			// head positions, partial fills, and fully-wrapped rings.
			func() Summary { return mustWindowedSummary(24, 4, 5) },
			// The quantile summary (GK01): a coarse ε keeps the tuple list
			// compressing through every fuzz stream.
			func() Summary { return NewQuantile(0.2) },
		}
		for _, mk := range builders {
			parent := mk()
			for _, it := range items {
				parent.Update(it, 1)
			}
			snap := parent.(Snapshotter).Snapshot()
			blob, err := snap.(interface{ MarshalBinary() ([]byte, error) }).MarshalBinary()
			if err != nil {
				t.Fatalf("%s: marshal snapshot: %v", parent.Name(), err)
			}
			dec, err := Decode(blob)
			if err != nil {
				t.Fatalf("%s: decode snapshot blob: %v", parent.Name(), err)
			}
			if dec.N() != parent.N() {
				t.Fatalf("%s: decoded N = %d, parent %d", parent.Name(), dec.N(), parent.N())
			}
			for u := Item(0); u < 32; u++ {
				if de, pe := dec.Estimate(u), parent.Estimate(u); de != pe {
					t.Fatalf("%s: decoded Estimate(%d) = %d, parent %d", parent.Name(), u, de, pe)
				}
			}
			// Advance the parent; the snapshot's wire form must not move.
			parent.Update(Item(7), 3)
			blob2, err := snap.(interface{ MarshalBinary() ([]byte, error) }).MarshalBinary()
			if err != nil {
				t.Fatalf("%s: re-marshal snapshot: %v", parent.Name(), err)
			}
			if len(blob2) != len(blob) {
				t.Fatalf("%s: snapshot blob changed size after parent update (%d → %d bytes)",
					parent.Name(), len(blob), len(blob2))
			}
			// Map-backed encoders (LC01) serialize entries in map order, so
			// compare decoded behaviour, not raw bytes.
			dec2, err := Decode(blob2)
			if err != nil {
				t.Fatalf("%s: decode re-marshaled blob: %v", parent.Name(), err)
			}
			for u := Item(0); u < 32; u++ {
				if a, b := dec2.Estimate(u), dec.Estimate(u); a != b {
					t.Fatalf("%s: snapshot drifted after parent update: Estimate(%d) %d → %d",
						parent.Name(), u, b, a)
				}
			}
		}
	})
}

func TestDecodeTruncationsNeverPanic(t *testing.T) {
	h, err := NewCountMinHierarchy(HierarchyConfig{Depth: 2, Width: 32, Bits: 8, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	h.Update(9, 4)
	blob, err := h.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	for cut := 0; cut <= len(blob); cut++ {
		decodeNeverPanics(t, blob[:cut])
	}
}
