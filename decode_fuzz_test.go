package streamfreq

// Robustness of the wire-format decoders: arbitrary and mutated bytes
// must produce errors, never panics or runaway allocations. This is the
// failure-injection arm of the test plan (DESIGN.md §6).

import (
	"testing"
	"testing/quick"

	"streamfreq/internal/prng"
)

// decodeNeverPanics drives Decode with hostile input.
func decodeNeverPanics(t *testing.T, data []byte) {
	t.Helper()
	defer func() {
		if r := recover(); r != nil {
			t.Fatalf("Decode panicked on %d bytes: %v", len(data), r)
		}
	}()
	_, _ = Decode(data)
}

func TestDecodeRandomBytesNeverPanic(t *testing.T) {
	f := func(data []byte) bool {
		decodeNeverPanics(t, data)
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}

func TestDecodeRandomBytesWithValidMagics(t *testing.T) {
	// Random payloads behind each valid magic: exercises every decoder's
	// header validation, not just the magic dispatch.
	rng := prng.New(0xFADE)
	magics := []string{"CM01", "CS01", "CG01", "HI01", "FQ01", "SS01", "LC01"}
	for _, magic := range magics {
		for trial := 0; trial < 300; trial++ {
			size := int(rng.Uint64n(256))
			data := make([]byte, 4+size)
			copy(data, magic)
			for i := 4; i < len(data); i++ {
				data[i] = byte(rng.Uint64())
			}
			decodeNeverPanics(t, data)
		}
	}
}

func TestDecodeBitFlippedBlobs(t *testing.T) {
	// Take real blobs and flip every byte position in turn: decoders must
	// reject or produce a structurally valid summary, never panic.
	sources := []Summary{
		NewFrequent(4),
		NewSpaceSaving(4),
		NewLossyCounting(0.1),
		NewCountMin(2, 16, 3),
		NewCountSketch(3, 16, 3),
		NewCGT(2, 8, 16, 3),
	}
	for _, s := range sources {
		s.Update(1, 5)
		s.Update(2, 2)
		blob, err := s.(interface{ MarshalBinary() ([]byte, error) }).MarshalBinary()
		if err != nil {
			t.Fatal(err)
		}
		for pos := 0; pos < len(blob); pos++ {
			mut := append([]byte(nil), blob...)
			mut[pos] ^= 0xFF
			func() {
				defer func() {
					if r := recover(); r != nil {
						t.Fatalf("%s: panic with byte %d flipped: %v", s.Name(), pos, r)
					}
				}()
				if dec, err := Decode(mut); err == nil && dec != nil {
					// A surviving decode must still behave like a summary.
					_ = dec.Estimate(1)
					_ = dec.Bytes()
					_ = dec.Query(1)
				}
			}()
		}
	}
}

func TestDecodeTruncationsNeverPanic(t *testing.T) {
	h, err := NewCountMinHierarchy(HierarchyConfig{Depth: 2, Width: 32, Bits: 8, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	h.Update(9, 4)
	blob, err := h.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	for cut := 0; cut <= len(blob); cut++ {
		decodeNeverPanics(t, blob[:cut])
	}
}
